package graph_test

// External test package: the equivalence property test drives the delta
// repair through random Waxman topologies, which live in internal/topology —
// a package that imports graph, so the test cannot be in package graph.

import (
	"math/rand"
	"testing"

	"smrp/internal/graph"
	"smrp/internal/topology"
)

// TestISPFEquivalence is the iSPF oracle test: over ≥50 random Waxman
// topologies it replays random failure/repair sequences against a cached
// graph (so every query after the first goes through the delta-repair path)
// and, after every event, compares the repaired tree's distances and parents
// against a from-scratch sweep of the same (source, mask). Distances must be
// bit-identical — the studies' byte-stable output depends on it — and the
// parent arrays must match exactly, which also pins parent-chain
// reachability. Runs under the -race CI gate.
func TestISPFEquivalence(t *testing.T) {
	before := graph.SPFCounters()
	const topos = 50
	for ti := 0; ti < topos; ti++ {
		seed := uint64(9000 + ti)
		rng := topology.NewRNG(seed)
		g, err := topology.Waxman(topology.WaxmanConfig{
			N: 40 + ti%3*15, Alpha: 0.25, Beta: 0.35, EnsureConnected: true,
		}, rng)
		if err != nil {
			t.Fatalf("topo %d: %v", ti, err)
		}
		g.EnableSPFCache()
		edges := g.Edges()
		src := graph.NodeID(0)
		mask := graph.NewMask()
		var blockedNodes []graph.NodeID
		var blockedEdges []graph.EdgeID
		r := rand.New(rand.NewSource(int64(seed)))

		check := func(ev int) {
			t.Helper()
			tree := g.Dijkstra(src, mask)
			sw := g.NewSweep()
			defer sw.Release()
			sw.Run(src, mask, nil)
			for v := 0; v < g.NumNodes(); v++ {
				n := graph.NodeID(v)
				if got, want := tree.Dist[v], sw.Dist(n); got != want {
					t.Fatalf("topo %d event %d: dist[%d] = %v, oracle %v (mask %d elems)",
						ti, ev, v, got, want, len(blockedNodes)+len(blockedEdges))
				}
				if got, want := tree.Parent[v], sw.Parent(n); got != want {
					t.Fatalf("topo %d event %d: parent[%d] = %v, oracle %v",
						ti, ev, v, got, want)
				}
			}
		}

		check(-1) // initial full compute seeds the lineage
		events := 30
		for ev := 0; ev < events; ev++ {
			// 1–3 mutations per event: multi-mutation events make the mask
			// diff contain added AND removed elements simultaneously — the
			// sibling-mask pattern (lineage head computed under {e1}, query
			// under {e2}) that single-step evolution never produces, and
			// exactly the shape that once let a revived edge leak into the
			// failure phase (see ispf.go on phase ordering).
			muts := 1 + r.Intn(3)
			for mi := 0; mi < muts; mi++ {
				switch op := r.Intn(10); {
				case op < 4: // fail a node (occasionally even the source, to hit the fallback)
					n := graph.NodeID(r.Intn(g.NumNodes()))
					if r.Intn(8) != 0 && n == src {
						n = graph.NodeID((int(n) + 1) % g.NumNodes())
					}
					if !mask.NodeBlocked(n) {
						mask.BlockNode(n)
						blockedNodes = append(blockedNodes, n)
					}
				case op < 7: // fail an edge
					e := edges[r.Intn(len(edges))]
					mask.BlockEdge(e.A, e.B)
					blockedEdges = append(blockedEdges, e)
				case op < 9: // repair a failed node or edge
					if len(blockedNodes) > 0 && (len(blockedEdges) == 0 || r.Intn(2) == 0) {
						i := r.Intn(len(blockedNodes))
						mask.UnblockNode(blockedNodes[i])
						blockedNodes = append(blockedNodes[:i], blockedNodes[i+1:]...)
					} else if len(blockedEdges) > 0 {
						i := r.Intn(len(blockedEdges))
						e := blockedEdges[i]
						mask.UnblockEdge(e.A, e.B)
						blockedEdges = append(blockedEdges[:i], blockedEdges[i+1:]...)
					}
				default: // correlated burst: fail two elements at once
					e := edges[r.Intn(len(edges))]
					mask.BlockEdge(e.A, e.B)
					blockedEdges = append(blockedEdges, e)
					n := graph.NodeID(r.Intn(g.NumNodes()))
					if n != src && !mask.NodeBlocked(n) {
						mask.BlockNode(n)
						blockedNodes = append(blockedNodes, n)
					}
				}
			}
			check(ev)
			if ev%7 == 3 {
				// Query a second source so per-source lineages interleave.
				src2 := graph.NodeID(1 + (ev+ti)%(g.NumNodes()-1))
				tree2 := g.Dijkstra(src2, mask)
				sw := g.NewSweep()
				sw.Run(src2, mask, nil)
				for v := 0; v < g.NumNodes(); v++ {
					if tree2.Dist[v] != sw.Dist(graph.NodeID(v)) {
						sw.Release()
						t.Fatalf("topo %d event %d: src2 %d dist[%d] mismatch", ti, ev, src2, v)
					}
				}
				sw.Release()
			}
		}
	}
	// The test is only meaningful if the delta path actually ran.
	if graph.SPFCounters().Sub(before).DeltaRuns == 0 {
		t.Fatal("delta-repair path never exercised")
	}
}

// TestISPFDiffElements pins the Mask diff contract the delta path is built
// on: partition into added/removed, deterministic ordering, bounded fast
// path, nil handling.
func TestISPFDiffElements(t *testing.T) {
	old := graph.NewMask().BlockNode(3).BlockEdge(1, 2)
	cur := graph.NewMask().BlockNode(3).BlockNode(7).BlockEdge(4, 5)

	added, removed, ok := cur.DiffElements(old)
	if !ok {
		t.Fatal("small diff reported as oversized")
	}
	if len(added) != 2 || !(!added[0].IsEdge && added[0].Node == 7) ||
		!(added[1].IsEdge && added[1].Edge == graph.MakeEdgeID(4, 5)) {
		t.Fatalf("added = %+v", added)
	}
	if len(removed) != 1 || !(removed[0].IsEdge && removed[0].Edge == graph.MakeEdgeID(1, 2)) {
		t.Fatalf("removed = %+v", removed)
	}

	// Nil other: everything in cur is "added".
	added, removed, ok = cur.DiffElements(nil)
	if !ok || len(added) != 3 || len(removed) != 0 {
		t.Fatalf("diff vs nil: added=%d removed=%d ok=%v", len(added), len(removed), ok)
	}

	// Identical masks diff to nothing.
	added, removed, ok = cur.DiffElements(cur.Clone())
	if !ok || len(added)+len(removed) != 0 {
		t.Fatalf("self diff: added=%d removed=%d ok=%v", len(added), len(removed), ok)
	}

	// Oversized diffs take the bounded fast path.
	big := graph.NewMask()
	for i := 0; i <= graph.DefaultDiffLimit; i++ {
		big.BlockNode(graph.NodeID(100 + i))
	}
	if _, _, ok := big.DiffElements(graph.NewMask()); ok {
		t.Fatal("oversized diff not rejected")
	}
	// Quick reject must also trigger on the count difference alone.
	if _, _, ok := graph.NewMask().DiffElements(big); ok {
		t.Fatal("oversized reverse diff not rejected")
	}
}
