package graph

// UnionFind is a disjoint-set structure over dense node IDs with union by
// rank and path compression.
type UnionFind struct {
	parent []int
	rank   []int
	sets   int
}

// NewUnionFind returns a UnionFind over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]int, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing a and b, reporting whether a merge
// actually happened (false if they were already joined).
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.sets--
	return true
}

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }

// Same reports whether a and b are in the same set.
func (u *UnionFind) Same(a, b int) bool { return u.Find(a) == u.Find(b) }

// Components returns the connected components of g (minus the mask) as
// slices of node IDs. Masked-out nodes are omitted entirely. Components and
// their members are in ascending ID order, so output is deterministic.
func (g *Graph) Components(mask *Mask) [][]NodeID {
	n := g.NumNodes()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]NodeID
	var stack []NodeID
	for start := 0; start < n; start++ {
		s := NodeID(start)
		if comp[start] != -1 || mask.NodeBlocked(s) {
			continue
		}
		id := len(out)
		comp[start] = id
		members := []NodeID{s}
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, arc := range g.adj[u] {
				v := arc.To
				if comp[v] != -1 || mask.NodeBlocked(v) || mask.EdgeBlocked(u, v) {
					continue
				}
				comp[v] = id
				members = append(members, v)
				stack = append(stack, v)
			}
		}
		sortNodeIDs(members)
		out = append(out, members)
	}
	return out
}

// Connected reports whether the graph minus the mask is connected over its
// unmasked nodes (an empty graph counts as connected).
func (g *Graph) Connected(mask *Mask) bool {
	return len(g.Components(mask)) <= 1
}

// ReachableFrom returns the set of nodes reachable from src in g minus the
// mask, including src itself. The result is indexed by NodeID.
func (g *Graph) ReachableFrom(src NodeID, mask *Mask) []bool {
	seen := make([]bool, g.NumNodes())
	if !g.valid(src) || mask.NodeBlocked(src) {
		return seen
	}
	stack := []NodeID{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, arc := range g.adj[u] {
			v := arc.To
			if seen[v] || mask.NodeBlocked(v) || mask.EdgeBlocked(u, v) {
				continue
			}
			seen[v] = true
			stack = append(stack, v)
		}
	}
	return seen
}

// sortNodeIDs sorts a NodeID slice in ascending order (insertion sort: the
// slices here are small and this avoids an interface allocation per call).
func sortNodeIDs(s []NodeID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
