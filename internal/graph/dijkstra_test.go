package graph

import (
	"math"
	"math/rand"
	"testing"
)

// diamond builds the 4-node graph
//
//	0 --1-- 1 --1-- 3
//	 \             /
//	  --2-- 2 --2--
//
// where 0→3 via 1 costs 2 and via 2 costs 4.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New(4)
	mustEdge(t, g, 0, 1, 1)
	mustEdge(t, g, 1, 3, 1)
	mustEdge(t, g, 0, 2, 2)
	mustEdge(t, g, 2, 3, 2)
	return g
}

func TestDijkstraBasic(t *testing.T) {
	g := diamond(t)
	tr := g.Dijkstra(0, nil)
	wantDist := []float64{0, 1, 2, 2}
	for n, want := range wantDist {
		if got := tr.Dist[n]; got != want {
			t.Errorf("Dist[%d] = %v, want %v", n, got, want)
		}
	}
	p := tr.PathTo(3)
	if p.String() != "0→1→3" {
		t.Errorf("PathTo(3) = %v, want 0→1→3", p)
	}
}

func TestDijkstraWithMask(t *testing.T) {
	g := diamond(t)
	mask := NewMask().BlockEdge(1, 3)
	p, d := g.ShortestPath(0, 3, mask)
	if d != 4 || p.String() != "0→2→3" {
		t.Errorf("masked shortest path = %v (%v), want 0→2→3 (4)", p, d)
	}
	mask.BlockNode(2)
	if _, d := g.ShortestPath(0, 3, mask); !math.IsInf(d, 1) {
		t.Errorf("fully blocked path should be unreachable, got %v", d)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1, 1)
	tr := g.Dijkstra(0, nil)
	if tr.Reachable(2) {
		t.Error("node 2 should be unreachable")
	}
	if p := tr.PathTo(2); p != nil {
		t.Errorf("PathTo(2) = %v, want nil", p)
	}
}

func TestDijkstraBlockedSource(t *testing.T) {
	g := diamond(t)
	tr := g.Dijkstra(0, NewMask().BlockNode(0))
	for n := 0; n < g.NumNodes(); n++ {
		if tr.Reachable(NodeID(n)) {
			t.Errorf("node %d reachable from blocked source", n)
		}
	}
}

func TestDijkstraSourcePath(t *testing.T) {
	g := diamond(t)
	tr := g.Dijkstra(2, nil)
	p := tr.PathTo(2)
	if len(p) != 1 || p[0] != 2 {
		t.Errorf("PathTo(source) = %v, want [2]", p)
	}
	if tr.Dist[2] != 0 {
		t.Errorf("Dist[source] = %v, want 0", tr.Dist[2])
	}
}

func TestNearestOf(t *testing.T) {
	g := line(t, 6) // 0-1-2-3-4-5
	accept := func(n NodeID) bool { return n == 0 || n == 5 }
	node, p, d := g.NearestOf(2, nil, accept)
	if node != 0 || d != 2 {
		t.Errorf("NearestOf = node %d dist %v, want node 0 dist 2", node, d)
	}
	if p.String() != "2→1→0" {
		t.Errorf("NearestOf path = %v, want 2→1→0", p)
	}
}

func TestNearestOfAcceptsSource(t *testing.T) {
	g := line(t, 3)
	node, p, d := g.NearestOf(1, nil, func(n NodeID) bool { return n == 1 })
	if node != 1 || d != 0 || len(p) != 1 {
		t.Errorf("NearestOf(source accepted) = %d,%v,%v", node, p, d)
	}
}

func TestNearestOfNoneReachable(t *testing.T) {
	g := line(t, 4)
	mask := NewMask().BlockEdge(1, 2)
	node, p, d := g.NearestOf(0, mask, func(n NodeID) bool { return n == 3 })
	if node != Invalid || p != nil || !math.IsInf(d, 1) {
		t.Errorf("NearestOf unreachable = %d,%v,%v, want Invalid,nil,+Inf", node, p, d)
	}
}

func TestNearestOfTiesAreNearest(t *testing.T) {
	// Star: center 0 with arms of different lengths.
	g := New(4)
	mustEdge(t, g, 0, 1, 5)
	mustEdge(t, g, 0, 2, 3)
	mustEdge(t, g, 0, 3, 4)
	node, _, d := g.NearestOf(0, nil, func(n NodeID) bool { return n != 0 })
	if node != 2 || d != 3 {
		t.Errorf("NearestOf = %d (%v), want 2 (3)", node, d)
	}
}

// randomConnectedGraph builds a connected random graph: a random spanning
// tree plus extra random edges, with weights in (0, 10].
func randomConnectedGraph(rng *rand.Rand, n, extraEdges int) *Graph {
	g := New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := NodeID(perm[i])
		v := NodeID(perm[rng.Intn(i)])
		_ = g.AddEdge(u, v, 1+rng.Float64()*9)
	}
	for i := 0; i < extraEdges; i++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		_ = g.AddEdge(u, v, 1+rng.Float64()*9)
	}
	return g
}

// bellmanFord is an independent O(V·E) reference implementation used to
// cross-check Dijkstra.
func bellmanFord(g *Graph, src NodeID) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, e := range g.Edges() {
			w, _ := g.EdgeWeight(e.A, e.B)
			if dist[e.A]+w < dist[e.B] {
				dist[e.B] = dist[e.A] + w
				changed = true
			}
			if dist[e.B]+w < dist[e.A] {
				dist[e.A] = dist[e.B] + w
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// TestDijkstraMatchesBellmanFord property-checks Dijkstra against an
// independent Bellman-Ford oracle on random connected graphs.
func TestDijkstraMatchesBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(40)
		g := randomConnectedGraph(rng, n, n)
		src := NodeID(rng.Intn(n))
		got := g.Dijkstra(src, nil)
		want := bellmanFord(g, src)
		for i := 0; i < n; i++ {
			if math.Abs(got.Dist[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: Dist[%d] = %v, Bellman-Ford says %v", trial, i, got.Dist[i], want[i])
			}
		}
	}
}

// TestDijkstraPathsAreConsistent checks that every reported path is valid,
// simple, and has weight equal to the reported distance.
func TestDijkstraPathsAreConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(30)
		g := randomConnectedGraph(rng, n, 2*n)
		src := NodeID(rng.Intn(n))
		tr := g.Dijkstra(src, nil)
		for i := 0; i < n; i++ {
			p := tr.PathTo(NodeID(i))
			if p == nil {
				t.Fatalf("trial %d: node %d unreachable in connected graph", trial, i)
			}
			if err := p.Validate(g); err != nil {
				t.Fatalf("trial %d: invalid path to %d: %v", trial, i, err)
			}
			if !p.IsSimple() {
				t.Fatalf("trial %d: non-simple path to %d: %v", trial, i, p)
			}
			w, err := p.Weight(g)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if math.Abs(w-tr.Dist[i]) > 1e-9 {
				t.Fatalf("trial %d: path weight %v != dist %v for node %d", trial, w, tr.Dist[i], i)
			}
		}
	}
}

// TestDijkstraDeterministic ensures repeated runs give identical trees.
func TestDijkstraDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randomConnectedGraph(rng, 40, 80)
	a := g.Dijkstra(0, nil)
	b := g.Dijkstra(0, nil)
	for i := range a.Parent {
		if a.Parent[i] != b.Parent[i] || a.Dist[i] != b.Dist[i] {
			t.Fatalf("non-deterministic Dijkstra at node %d", i)
		}
	}
}

func BenchmarkDijkstra100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnectedGraph(rng, 100, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Dijkstra(NodeID(i%100), nil)
	}
}
