package graph

import (
	"testing"
)

func TestPathBasics(t *testing.T) {
	g := line(t, 5)
	p := Path{0, 1, 2, 3}
	if p.Len() != 3 {
		t.Errorf("Len = %d, want 3", p.Len())
	}
	if p.First() != 0 || p.Last() != 3 {
		t.Errorf("First/Last = %d/%d, want 0/3", p.First(), p.Last())
	}
	w, err := p.Weight(g)
	if err != nil || w != 3 {
		t.Errorf("Weight = %v,%v, want 3,nil", w, err)
	}
	if err := p.Validate(g); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPathWeightInvalidEdge(t *testing.T) {
	g := line(t, 5)
	p := Path{0, 2}
	if _, err := p.Weight(g); err == nil {
		t.Error("Weight over non-edge should error")
	}
	if err := p.Validate(g); err == nil {
		t.Error("Validate over non-edge should error")
	}
}

func TestPathEdges(t *testing.T) {
	p := Path{3, 1, 2}
	edges := p.Edges()
	want := []EdgeID{{1, 3}, {1, 2}}
	if len(edges) != 2 || edges[0] != want[0] || edges[1] != want[1] {
		t.Errorf("Edges = %v, want %v", edges, want)
	}
	if (Path{7}).Edges() != nil {
		t.Error("single-node path should have no edges")
	}
}

func TestPathContains(t *testing.T) {
	p := Path{0, 1, 2}
	if !p.ContainsNode(1) || p.ContainsNode(9) {
		t.Error("ContainsNode mismatch")
	}
	if !p.ContainsEdge(MakeEdgeID(2, 1)) {
		t.Error("ContainsEdge should be orientation-insensitive")
	}
	if p.ContainsEdge(MakeEdgeID(0, 2)) {
		t.Error("ContainsEdge false positive")
	}
}

func TestPathReverse(t *testing.T) {
	p := Path{0, 1, 2}
	r := p.Reverse()
	if r.String() != "2→1→0" {
		t.Errorf("Reverse = %v", r)
	}
	if p.String() != "0→1→2" {
		t.Error("Reverse mutated the original")
	}
}

func TestPathConcat(t *testing.T) {
	tests := []struct {
		name    string
		a, b    Path
		want    string
		wantErr bool
	}{
		{name: "joined", a: Path{0, 1}, b: Path{1, 2}, want: "0→1→2"},
		{name: "mismatch", a: Path{0, 1}, b: Path{2, 3}, wantErr: true},
		{name: "empty left", a: nil, b: Path{4, 5}, want: "4→5"},
		{name: "empty right", a: Path{4, 5}, b: nil, want: "4→5"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.a.Concat(tt.b)
			if (err != nil) != tt.wantErr {
				t.Fatalf("Concat error = %v, wantErr %v", err, tt.wantErr)
			}
			if err == nil && got.String() != tt.want {
				t.Errorf("Concat = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPathIsSimple(t *testing.T) {
	if !(Path{0, 1, 2}).IsSimple() {
		t.Error("simple path misreported")
	}
	if (Path{0, 1, 0}).IsSimple() {
		t.Error("looping path misreported as simple")
	}
}

func TestPathString(t *testing.T) {
	if got := (Path{}).String(); got != "<empty>" {
		t.Errorf("empty path String = %q", got)
	}
	if got := (Path{4}).String(); got != "4" {
		t.Errorf("String = %q, want 4", got)
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	mustEdge(t, g, 0, 1, 1)
	mustEdge(t, g, 1, 2, 1)
	mustEdge(t, g, 3, 4, 1)
	comps := g.Components(nil)
	if len(comps) != 3 {
		t.Fatalf("Components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Errorf("component sizes = %d,%d,%d", len(comps[0]), len(comps[1]), len(comps[2]))
	}
	if g.Connected(nil) {
		t.Error("disconnected graph reported connected")
	}
}

func TestComponentsWithMask(t *testing.T) {
	g := line(t, 4)
	if !g.Connected(nil) {
		t.Fatal("line should be connected")
	}
	mask := NewMask().BlockEdge(1, 2)
	comps := g.Components(mask)
	if len(comps) != 2 {
		t.Fatalf("masked components = %d, want 2", len(comps))
	}
	// Masked node disappears entirely.
	mask2 := NewMask().BlockNode(1)
	comps2 := g.Components(mask2)
	if len(comps2) != 2 {
		t.Fatalf("node-masked components = %d, want 2", len(comps2))
	}
	for _, c := range comps2 {
		for _, n := range c {
			if n == 1 {
				t.Error("blocked node appeared in a component")
			}
		}
	}
}

func TestReachableFrom(t *testing.T) {
	g := line(t, 5)
	mask := NewMask().BlockEdge(2, 3)
	seen := g.ReachableFrom(0, mask)
	want := []bool{true, true, true, false, false}
	for i, w := range want {
		if seen[i] != w {
			t.Errorf("ReachableFrom[%d] = %v, want %v", i, seen[i], w)
		}
	}
	// Blocked source reaches nothing.
	none := g.ReachableFrom(0, NewMask().BlockNode(0))
	for i, s := range none {
		if s {
			t.Errorf("ReachableFrom blocked source: node %d reported reachable", i)
		}
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatalf("initial Sets = %d", uf.Sets())
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Fatal("unions should merge")
	}
	if uf.Union(0, 2) {
		t.Error("repeated union should report false")
	}
	if uf.Sets() != 3 {
		t.Errorf("Sets = %d, want 3", uf.Sets())
	}
	if !uf.Same(0, 2) || uf.Same(0, 3) {
		t.Error("Same mismatch")
	}
}

func TestKShortestPaths(t *testing.T) {
	g := diamond(t)
	paths := g.KShortestPaths(0, 3, 3, nil)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (diamond has exactly two simple paths)", len(paths))
	}
	if paths[0].Weight != 2 || paths[0].Path.String() != "0→1→3" {
		t.Errorf("first path = %v (%v)", paths[0].Path, paths[0].Weight)
	}
	if paths[1].Weight != 4 || paths[1].Path.String() != "0→2→3" {
		t.Errorf("second path = %v (%v)", paths[1].Path, paths[1].Weight)
	}
}

func TestKShortestPathsOrderingAndSimplicity(t *testing.T) {
	g := New(6)
	mustEdge(t, g, 0, 1, 1)
	mustEdge(t, g, 1, 5, 1)
	mustEdge(t, g, 0, 2, 1)
	mustEdge(t, g, 2, 5, 2)
	mustEdge(t, g, 0, 3, 2)
	mustEdge(t, g, 3, 5, 2)
	mustEdge(t, g, 1, 2, 1)
	mustEdge(t, g, 2, 3, 1)
	paths := g.KShortestPaths(0, 5, 6, nil)
	if len(paths) < 3 {
		t.Fatalf("got %d paths, want at least 3", len(paths))
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Weight < paths[i-1].Weight {
			t.Errorf("paths out of order at %d: %v then %v", i, paths[i-1].Weight, paths[i].Weight)
		}
	}
	seen := map[string]bool{}
	for _, wp := range paths {
		if !wp.Path.IsSimple() {
			t.Errorf("non-simple path %v", wp.Path)
		}
		if seen[wp.Path.String()] {
			t.Errorf("duplicate path %v", wp.Path)
		}
		seen[wp.Path.String()] = true
		w, err := wp.Path.Weight(g)
		if err != nil || w != wp.Weight {
			t.Errorf("path %v weight %v reported %v (%v)", wp.Path, w, wp.Weight, err)
		}
	}
}

func TestKShortestPathsEdgeCases(t *testing.T) {
	g := diamond(t)
	if got := g.KShortestPaths(0, 3, 0, nil); got != nil {
		t.Error("k=0 should return nil")
	}
	g2 := New(2)
	if got := g2.KShortestPaths(0, 1, 3, nil); got != nil {
		t.Error("disconnected pair should return nil")
	}
}
