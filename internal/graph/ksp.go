package graph

import "slices"

// WeightedPath pairs a path with its total weight.
type WeightedPath struct {
	Path   Path
	Weight float64
}

// KShortestPaths returns up to k loopless shortest paths from src to dst in
// ascending weight order, using Yen's algorithm on top of Dijkstra. The mask,
// if non-nil, is applied throughout. Fewer than k paths are returned when the
// graph does not contain that many distinct simple paths.
//
// The experiment harness uses this to enumerate diverse join candidates when
// exercising the query-scheme ablation (§3.3.1 of the paper).
func (g *Graph) KShortestPaths(src, dst NodeID, k int, mask *Mask) []WeightedPath {
	if k <= 0 {
		return nil
	}
	first, w := g.ShortestPath(src, dst, mask)
	if first == nil {
		return nil
	}
	result := []WeightedPath{{Path: first, Weight: w}}
	var candidates []WeightedPath

	// One scratch mask serves every spur probe: per probe we block the root
	// path and already-used branch edges, run the probe, then unblock exactly
	// what we added (O(1) per element thanks to the XOR fingerprint). The
	// previous implementation cloned the caller's mask per probe — O(|mask|)
	// map copies inside a triply nested loop.
	branch := mask.Clone()
	var addedNodes []NodeID
	var addedEdges []EdgeID

	for len(result) < k {
		prev := result[len(result)-1].Path
		// For each node on the previous path except the last, branch off.
		for i := 0; i < len(prev)-1; i++ {
			spurNode := prev[i]
			rootPath := prev[:i+1]

			addedNodes, addedEdges = addedNodes[:0], addedEdges[:0]
			// Remove edges used by already-found paths sharing this root.
			// Track only elements newly blocked here so the unblock below
			// never lifts a block owned by the caller's mask.
			for _, rp := range result {
				if pathHasPrefix(rp.Path, rootPath) && len(rp.Path) > i+1 {
					e := MakeEdgeID(rp.Path[i], rp.Path[i+1])
					if !branch.edges[e] {
						branch.BlockEdge(e.A, e.B)
						addedEdges = append(addedEdges, e)
					}
				}
			}
			// Remove root-path nodes (except the spur node) to keep paths
			// loopless.
			for _, n := range rootPath[:len(rootPath)-1] {
				if !branch.nodeBlocked(n) {
					branch.BlockNode(n)
					addedNodes = append(addedNodes, n)
				}
			}

			spurPath, _ := g.ShortestPath(spurNode, dst, branch)
			for _, n := range addedNodes {
				branch.UnblockNode(n)
			}
			for _, e := range addedEdges {
				branch.UnblockEdge(e.A, e.B)
			}
			if spurPath == nil {
				continue
			}
			total, err := Path(append(append(Path(nil), rootPath...), spurPath[1:]...)).Weight(g)
			if err != nil {
				continue
			}
			cand := WeightedPath{
				Path:   append(append(Path(nil), rootPath...), spurPath[1:]...),
				Weight: total,
			}
			if !containsPath(candidates, cand.Path) && !resultHasPath(result, cand.Path) {
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		slices.SortFunc(candidates, func(a, b WeightedPath) int {
			switch {
			case a.Weight < b.Weight:
				return -1
			case a.Weight > b.Weight:
				return 1
			case pathLess(a.Path, b.Path):
				return -1
			case pathLess(b.Path, a.Path):
				return 1
			}
			return 0
		})
		result = append(result, candidates[0])
		candidates = candidates[1:]
	}
	return result
}

// pathHasPrefix reports whether p begins with the node sequence prefix.
func pathHasPrefix(p Path, prefix Path) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i, n := range prefix {
		if p[i] != n {
			return false
		}
	}
	return true
}

// pathEqual reports whether two paths are node-for-node identical.
func pathEqual(a, b Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pathLess imposes a deterministic total order on equal-weight paths.
func pathLess(a, b Path) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func containsPath(list []WeightedPath, p Path) bool {
	for _, wp := range list {
		if pathEqual(wp.Path, p) {
			return true
		}
	}
	return false
}

func resultHasPath(list []WeightedPath, p Path) bool {
	return containsPath(list, p)
}
