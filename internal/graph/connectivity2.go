package graph

import "slices"

// Bridges returns the bridge edges (cut edges) of g minus the mask, in
// canonical order, using Tarjan's low-point algorithm. An edge is a bridge
// when removing it disconnects its component.
func (g *Graph) Bridges(mask *Mask) []EdgeID {
	n := g.NumNodes()
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	var out []EdgeID
	timer := 0

	// Iterative DFS to keep deep random graphs from blowing the stack.
	type frame struct {
		node, parent NodeID
		idx          int
	}
	for start := 0; start < n; start++ {
		s := NodeID(start)
		if disc[start] != -1 || mask.NodeBlocked(s) {
			continue
		}
		stack := []frame{{node: s, parent: Invalid}}
		disc[start], low[start] = timer, timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			adj := g.adj[f.node]
			advanced := false
			for f.idx < len(adj) {
				arc := adj[f.idx]
				f.idx++
				v := arc.To
				if v == f.parent || mask.NodeBlocked(v) || mask.EdgeBlocked(f.node, v) {
					continue
				}
				if disc[v] == -1 {
					disc[v], low[v] = timer, timer
					timer++
					stack = append(stack, frame{node: v, parent: f.node})
					advanced = true
					break
				}
				if disc[v] < low[f.node] {
					low[f.node] = disc[v]
				}
			}
			if advanced {
				continue
			}
			// Post-visit: propagate low to parent, detect bridge.
			done := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if done.parent != Invalid {
				if low[done.node] < low[done.parent] {
					low[done.parent] = low[done.node]
				}
				if low[done.node] > disc[done.parent] {
					out = append(out, MakeEdgeID(done.parent, done.node))
				}
			}
		}
	}
	slices.SortFunc(out, edgeIDCompare)
	return out
}

// ArticulationPoints returns the cut vertices of g minus the mask, in
// ascending order, using Tarjan's low-point rules: a non-root vertex p is
// an articulation point if some DFS child c has low[c] ≥ disc[p]; a DFS
// root is one if it has two or more DFS children.
func (g *Graph) ArticulationPoints(mask *Mask) []NodeID {
	n := g.NumNodes()
	disc := make([]int, n)
	low := make([]int, n)
	rootKids := make([]int, n)
	isArt := make([]bool, n)
	for i := range disc {
		disc[i] = -1
	}
	timer := 0
	type frame struct {
		node, parent NodeID
		idx          int
	}
	for start := 0; start < n; start++ {
		s := NodeID(start)
		if disc[start] != -1 || mask.NodeBlocked(s) {
			continue
		}
		stack := []frame{{node: s, parent: Invalid}}
		disc[start], low[start] = timer, timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			adj := g.adj[f.node]
			advanced := false
			for f.idx < len(adj) {
				arc := adj[f.idx]
				f.idx++
				v := arc.To
				if v == f.parent || mask.NodeBlocked(v) || mask.EdgeBlocked(f.node, v) {
					continue
				}
				if disc[v] == -1 {
					disc[v], low[v] = timer, timer
					timer++
					stack = append(stack, frame{node: v, parent: f.node})
					advanced = true
					break
				}
				if disc[v] < low[f.node] {
					low[f.node] = disc[v]
				}
			}
			if advanced {
				continue
			}
			done := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			p := done.parent
			if p == Invalid {
				continue
			}
			if low[done.node] < low[p] {
				low[p] = low[done.node]
			}
			if p == s {
				rootKids[s]++
			} else if low[done.node] >= disc[p] {
				isArt[p] = true
			}
		}
		if rootKids[s] >= 2 {
			isArt[s] = true
		}
	}
	var out []NodeID
	for i, a := range isArt {
		if a {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// TwoEdgeConnected reports whether g minus the mask is connected and
// bridge-free over its unmasked nodes.
func (g *Graph) TwoEdgeConnected(mask *Mask) bool {
	return g.Connected(mask) && len(g.Bridges(mask)) == 0
}

// Biconnected reports whether g minus the mask is connected and has no
// articulation points (and at least 3 nodes, per the usual convention that
// a single edge is not biconnected).
func (g *Graph) Biconnected(mask *Mask) bool {
	active := 0
	for i := 0; i < g.NumNodes(); i++ {
		if !mask.NodeBlocked(NodeID(i)) {
			active++
		}
	}
	if active < 3 {
		return false
	}
	return g.Connected(mask) && len(g.ArticulationPoints(mask)) == 0
}
