package graph

import (
	"math/rand"
	"slices"
	"testing"
)

// ispfTestGraph builds a deterministic random-ish connected graph large
// enough for repairs to have real orphan subtrees.
func ispfTestGraph(t *testing.T) *Graph {
	t.Helper()
	const n = 64
	g := New(n)
	r := rand.New(rand.NewSource(42))
	for i := 1; i < n; i++ {
		// spanning chain with varied weights keeps everything reachable
		if err := g.AddEdge(NodeID(i-1), NodeID(i), 1+float64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 3*n; k++ {
		u, v := NodeID(r.Intn(n)), NodeID(r.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v, 1+float64(r.Intn(9))); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestISPFRepairSteadyStateAllocs pins the delta-repair core at zero heap
// allocations once the pooled scratch arena is warm. Clone-on-write of the
// lineage tree and the entry's mask clone are inherent per-miss costs and are
// deliberately outside the guard — this guards the repair itself.
func TestISPFRepairSteadyStateAllocs(t *testing.T) {
	g := ispfTestGraph(t)
	src := NodeID(0)
	base := g.dijkstra(src, nil)

	victimN := NodeID(17)
	victimE := MakeEdgeID(5, 6)
	maskFail := NewMask().BlockNode(victimN).BlockEdge(victimE.A, victimE.B)
	maskNone := NewMask()
	addedFail := []MaskElem{{Node: victimN}, {Edge: victimE, IsEdge: true}}

	sc := ispfPool.Get().(*ispfScratch)
	defer ispfPool.Put(sc)
	tr := cloneTree(base)

	cycle := func() {
		// fail, then repair back to the empty mask: tr returns to its
		// starting state so the cycle is repeatable in place.
		if _, ok := ispfRepair(g, tr, addedFail, nil, maskFail, sc); !ok {
			t.Fatal("failure repair declined")
		}
		if _, ok := ispfRepair(g, tr, nil, addedFail, maskNone, sc); !ok {
			t.Fatal("revival repair declined")
		}
	}
	cycle() // warm the arena (heap growth, stamp arrays, diff splits)
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Fatalf("steady-state delta repair allocates %.1f objects/cycle, want 0", allocs)
	}
	// The round-trip must land exactly on the original tree.
	for v := range tr.Dist {
		if tr.Dist[v] != base.Dist[v] || tr.Parent[v] != base.Parent[v] {
			t.Fatalf("round-trip diverged at node %d: (%v,%v) != (%v,%v)",
				v, tr.Dist[v], tr.Parent[v], base.Dist[v], base.Parent[v])
		}
	}
}

// TestKSPUsesDeltaRepair verifies the k-shortest-paths satellite: Yen's
// block/unblock probe masks differ from one another by a handful of elements,
// so with the cache enabled the probes must be served by delta repairs, not
// guaranteed full-sweep misses — and the ranked paths must be identical to
// the uncached computation.
func TestKSPUsesDeltaRepair(t *testing.T) {
	g := ispfTestGraph(t)
	src, dst := NodeID(0), NodeID(63)

	want := g.KShortestPaths(src, dst, 6, nil) // uncached reference

	g.EnableSPFCache()
	before := SPFCounters()
	got := g.KShortestPaths(src, dst, 6, nil)
	d := SPFCounters().Sub(before)

	// Every spur node's first probe is necessarily a full sweep (no lineage
	// for that source yet); all repeat probes from the same spur must be
	// delta repairs.
	if d.DeltaRuns == 0 {
		t.Fatalf("KSP probes never hit the delta-repair path (full=%d delta=%d)",
			d.FullRuns, d.DeltaRuns)
	}
	if len(got) != len(want) {
		t.Fatalf("cached KSP returned %d paths, uncached %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Weight != want[i].Weight || !slices.Equal(got[i].Path, want[i].Path) {
			t.Fatalf("path %d differs: cached %v (%v), uncached %v (%v)",
				i, got[i].Path, got[i].Weight, want[i].Path, want[i].Weight)
		}
	}
}

// TestISPFSiblingMaskSwap is the regression test for the phase-ordering bug:
// when the lineage head was computed under {e1} and the query mask is {e2},
// the diff contains an added AND a removed edge simultaneously. The failure
// phase must not use the edge being revived — if it does, orphans re-attach
// through it at their final distance, the repair phase's seed sees no
// improvement, and alive nodes downstream keep stale distances. Exercises
// every ordered pair from a sample of edges.
func TestISPFSiblingMaskSwap(t *testing.T) {
	g := ispfTestGraph(t)
	g.EnableSPFCache()
	src := NodeID(0)
	edges := g.Edges()
	step := len(edges)/12 + 1
	for i := 0; i < len(edges); i += step {
		for j := 0; j < len(edges); j += step {
			if i == j {
				continue
			}
			e1, e2 := edges[i], edges[j]
			// Seed the lineage under {e1}, then query the sibling mask {e2}:
			// the second query is a delta with added={e2}, removed={e1}.
			m1 := NewMask().BlockEdge(e1.A, e1.B)
			g.Dijkstra(src, m1)
			m2 := NewMask().BlockEdge(e2.A, e2.B)
			got := g.Dijkstra(src, m2)
			want := g.dijkstra(src, m2)
			for v := range want.Dist {
				if got.Dist[v] != want.Dist[v] || got.Parent[v] != want.Parent[v] {
					t.Fatalf("swap %v->%v: node %d got (%v,%v) want (%v,%v)",
						e1, e2, v, got.Dist[v], got.Parent[v], want.Dist[v], want.Parent[v])
				}
			}
		}
	}
}

// TestSPFDeltaToggle pins the baseline switch: with the delta path disabled
// every miss is a full sweep, and results are unchanged.
func TestSPFDeltaToggle(t *testing.T) {
	g := ispfTestGraph(t)
	g.EnableSPFCache()
	src := NodeID(0)

	m := NewMask()
	ref := make([]*SPTree, 0, 4)
	for i := 0; i < 4; i++ {
		m.BlockNode(NodeID(10 + i))
		ref = append(ref, cloneTree(g.Dijkstra(src, m)))
	}

	SetSPFDelta(false)
	defer SetSPFDelta(true)
	if SPFDeltaEnabled() {
		t.Fatal("SetSPFDelta(false) did not take effect")
	}
	g.SPFCacheOf().Flush()
	// recompute under a fresh lineage; everything must be a full sweep
	before := SPFCounters()
	m2 := NewMask()
	for i := 0; i < 4; i++ {
		m2.BlockNode(NodeID(10 + i))
		tr := g.Dijkstra(src, m2)
		for v := range tr.Dist {
			if tr.Dist[v] != ref[i].Dist[v] || tr.Parent[v] != ref[i].Parent[v] {
				t.Fatalf("delta-off tree %d differs at node %d", i, v)
			}
		}
	}
	d := SPFCounters().Sub(before)
	if d.DeltaRuns != 0 || d.FullRuns == 0 {
		t.Fatalf("delta disabled but counters say full=%d delta=%d", d.FullRuns, d.DeltaRuns)
	}
}
