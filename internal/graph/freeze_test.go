package graph

import (
	"errors"
	"math"
	"math/rand"
	"slices"
	"testing"
)

// buildRandomPair replays one random build sequence (AddNode/AddEdge, with
// occasional Clone swaps so clone lineage is exercised mid-build) into two
// graphs and returns them. The caller freezes one and keeps the other as the
// map-backed reference.
func buildRandomPair(rng *rand.Rand) (ref, froze *Graph) {
	ref, froze = New(0), New(0)
	steps := 40 + rng.Intn(120)
	for i := 0; i < steps; i++ {
		switch {
		case ref.NumNodes() < 2 || rng.Intn(4) == 0:
			p := Point{X: rng.Float64(), Y: rng.Float64()}
			ref.AddNode(p)
			froze.AddNode(p)
		case rng.Intn(8) == 0:
			// Continue the build on a mid-sequence clone of each side.
			ref, froze = ref.Clone(), froze.Clone()
		default:
			u := NodeID(rng.Intn(ref.NumNodes()))
			v := NodeID(rng.Intn(ref.NumNodes()))
			w := 0.1 + rng.Float64()
			errA := ref.AddEdge(u, v, w)
			errB := froze.AddEdge(u, v, w)
			if (errA == nil) != (errB == nil) {
				panic("build divergence")
			}
		}
	}
	return ref, froze
}

// TestFrozenGraphEquivalence is the frozen-graph property test: random build
// sequences of AddNode/AddEdge/Clone, then every read API of the frozen CSR
// representation checked bit-identical against the map-backed reference —
// Edges, HasEdge, EdgeWeight, AvgDegree, Neighbors order, NumEdges, the
// deterministic footprint delta, and full Dijkstra trees from several
// sources (distances and parents compared exactly).
func TestFrozenGraphEquivalence(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		ref, froze := buildRandomPair(rng)
		froze.Freeze()
		if !froze.Frozen() {
			t.Fatal("Freeze did not mark the graph frozen")
		}
		froze.Freeze() // idempotent

		if got, want := froze.NumNodes(), ref.NumNodes(); got != want {
			t.Fatalf("trial %d: NumNodes %d != %d", trial, got, want)
		}
		if got, want := froze.NumEdges(), ref.NumEdges(); got != want {
			t.Fatalf("trial %d: NumEdges %d != %d", trial, got, want)
		}
		if got, want := froze.AvgDegree(), ref.AvgDegree(); got != want {
			t.Fatalf("trial %d: AvgDegree %v != %v", trial, got, want)
		}
		if !slices.Equal(froze.Edges(), ref.Edges()) {
			t.Fatalf("trial %d: Edges diverge", trial)
		}
		n := ref.NumNodes()
		for u := NodeID(0); u < NodeID(n); u++ {
			if !slices.Equal(froze.Neighbors(u), ref.Neighbors(u)) {
				t.Fatalf("trial %d: Neighbors(%d) diverge", trial, u)
			}
			for v := NodeID(0); v < NodeID(n); v++ {
				hw, hok := froze.EdgeWeight(u, v)
				rw, rok := ref.EdgeWeight(u, v)
				if hok != rok || hw != rw {
					t.Fatalf("trial %d: EdgeWeight(%d,%d) = (%v,%v) want (%v,%v)",
						trial, u, v, hw, hok, rw, rok)
				}
				if froze.HasEdge(u, v) != ref.HasEdge(u, v) {
					t.Fatalf("trial %d: HasEdge(%d,%d) diverges", trial, u, v)
				}
			}
		}
		// Dijkstra output bit-identical from a few sources (and from the
		// frozen clone, which shares the immutable storage).
		fc := froze.Clone()
		if !fc.Frozen() {
			t.Fatal("clone of frozen graph is not frozen")
		}
		for s := 0; s < 3 && s < n; s++ {
			src := NodeID(rng.Intn(n))
			rt := ref.Dijkstra(src, nil)
			for _, g2 := range []*Graph{froze, fc} {
				ft := g2.Dijkstra(src, nil)
				if !slices.Equal(ft.Dist, rt.Dist) || !slices.Equal(ft.Parent, rt.Parent) {
					t.Fatalf("trial %d: Dijkstra(%d) diverges on frozen graph", trial, src)
				}
			}
		}
		// Footprint: freezing must only ever shrink the accounting (the map
		// entry costs more than a sorted-pair entry), by exactly the
		// per-edge delta plus any adjacency slack released by re-packing.
		if froze.MemoryFootprint() > ref.MemoryFootprint() {
			t.Fatalf("trial %d: frozen footprint %d exceeds build-phase %d",
				trial, froze.MemoryFootprint(), ref.MemoryFootprint())
		}

		// Immutability contract.
		if err := froze.AddEdge(0, 1, 1); !errors.Is(err, ErrFrozen) {
			t.Fatalf("trial %d: AddEdge on frozen graph: %v, want ErrFrozen", trial, err)
		}
		mustPanic := func(f func()) {
			defer func() {
				if recover() == nil {
					t.Fatalf("trial %d: mutator on frozen graph did not panic", trial)
				}
			}()
			f()
		}
		mustPanic(func() { froze.AddNode(Point{}) })
		mustPanic(func() { froze.SetPos(0, Point{X: 1}) })
	}
}

// TestFrozenGraphMaskedSweeps pins the frozen representation under the
// failure machinery: masked Dijkstra and iSPF-cached lookups answer
// identically on the frozen and map-backed twins.
func TestFrozenGraphMaskedSweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	ref, froze := buildRandomPair(rng)
	froze.Freeze()
	ref.EnableSPFCache()
	froze.EnableSPFCache()
	n := ref.NumNodes()
	mask := NewMask()
	for round := 0; round < 20; round++ {
		if rng.Intn(2) == 0 {
			mask.BlockNode(NodeID(rng.Intn(n)))
		} else if es := ref.Edges(); len(es) > 0 {
			e := es[rng.Intn(len(es))]
			mask.BlockEdge(e.A, e.B)
		}
		src := NodeID(rng.Intn(n))
		rt := ref.Dijkstra(src, mask)
		ft := froze.Dijkstra(src, mask)
		if !slices.Equal(ft.Dist, rt.Dist) || !slices.Equal(ft.Parent, rt.Parent) {
			t.Fatalf("round %d: masked Dijkstra(%d) diverges", round, src)
		}
	}
}

// BenchmarkEdgeWeightLookup measures the steady-state edge-weight probe:
// the build-phase map against the frozen graph's sorted-array binary search,
// on an evaluation-scale edge set with a uniform query mix of present and
// absent edges.
func BenchmarkEdgeWeightLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := New(2000)
	for g.NumEdges() < 8000 {
		u := NodeID(rng.Intn(2000))
		v := NodeID(rng.Intn(2000))
		_ = g.AddEdge(u, v, 0.1+rng.Float64())
	}
	queries := make([]EdgeID, 4096)
	edges := g.Edges()
	for i := range queries {
		if i%2 == 0 {
			queries[i] = edges[rng.Intn(len(edges))]
		} else {
			queries[i] = MakeEdgeID(NodeID(rng.Intn(2000)), NodeID(rng.Intn(2000)))
		}
	}
	run := func(b *testing.B, g *Graph) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			q := queries[i&(len(queries)-1)]
			if w, ok := g.EdgeWeight(q.A, q.B); ok {
				sink += w
			}
		}
		if math.IsNaN(sink) {
			b.Fatal("unreachable")
		}
	}
	frozen := g.Clone().Freeze()
	b.Run("map", func(b *testing.B) { run(b, g) })
	b.Run("sorted-array", func(b *testing.B) { run(b, frozen) })
}
