package graph

import "math"

// Eccentricity returns the greatest shortest-path distance from n to any
// node reachable from it (0 for an isolated node), and the farthest node.
func (g *Graph) Eccentricity(n NodeID, mask *Mask) (float64, NodeID) {
	t := g.Dijkstra(n, mask)
	var ecc float64
	far := n
	for i, d := range t.Dist {
		if math.IsInf(d, 1) {
			continue
		}
		if d > ecc {
			ecc = d
			far = NodeID(i)
		}
	}
	return ecc, far
}

// Diameter returns the largest finite shortest-path distance between any
// pair of nodes in g minus the mask (the diameter of the largest component
// when disconnected). O(V·E log V); intended for the evaluation-scale
// graphs of this repository.
func (g *Graph) Diameter(mask *Mask) float64 {
	var diam float64
	for n := 0; n < g.NumNodes(); n++ {
		if mask.NodeBlocked(NodeID(n)) {
			continue
		}
		if ecc, _ := g.Eccentricity(NodeID(n), mask); ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// HopDistance returns the minimum number of hops between u and v ignoring
// weights, or -1 when unreachable.
func (g *Graph) HopDistance(u, v NodeID, mask *Mask) int {
	if !g.valid(u) || !g.valid(v) || mask.NodeBlocked(u) || mask.NodeBlocked(v) {
		return -1
	}
	if u == v {
		return 0
	}
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[u] = 0
	queue := []NodeID{u}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, arc := range g.adj[cur] {
			w := arc.To
			if dist[w] != -1 || mask.NodeBlocked(w) || mask.EdgeBlocked(cur, w) {
				continue
			}
			dist[w] = dist[cur] + 1
			if w == v {
				return dist[w]
			}
			queue = append(queue, w)
		}
	}
	return -1
}
