package graph

import (
	"math/rand"
	"testing"
)

func TestBridgesLine(t *testing.T) {
	g := line(t, 4) // every edge is a bridge
	br := g.Bridges(nil)
	if len(br) != 3 {
		t.Fatalf("bridges = %v", br)
	}
}

func TestBridgesCycleHasNone(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		mustEdge(t, g, NodeID(i), NodeID((i+1)%4), 1)
	}
	if br := g.Bridges(nil); len(br) != 0 {
		t.Errorf("cycle bridges = %v", br)
	}
	if !g.TwoEdgeConnected(nil) {
		t.Error("cycle should be 2-edge-connected")
	}
}

func TestBridgesBarbell(t *testing.T) {
	// Two triangles joined by a single edge 2-3: that edge is the bridge.
	g := New(6)
	mustEdge(t, g, 0, 1, 1)
	mustEdge(t, g, 1, 2, 1)
	mustEdge(t, g, 2, 0, 1)
	mustEdge(t, g, 3, 4, 1)
	mustEdge(t, g, 4, 5, 1)
	mustEdge(t, g, 5, 3, 1)
	mustEdge(t, g, 2, 3, 1)
	br := g.Bridges(nil)
	if len(br) != 1 || br[0] != MakeEdgeID(2, 3) {
		t.Errorf("bridges = %v, want [(2-3)]", br)
	}
	if g.TwoEdgeConnected(nil) {
		t.Error("barbell is not 2-edge-connected")
	}
	arts := g.ArticulationPoints(nil)
	if len(arts) != 2 || arts[0] != 2 || arts[1] != 3 {
		t.Errorf("articulations = %v, want [2 3]", arts)
	}
}

func TestArticulationPointsStar(t *testing.T) {
	g := New(4)
	for i := 1; i < 4; i++ {
		mustEdge(t, g, 0, NodeID(i), 1)
	}
	arts := g.ArticulationPoints(nil)
	if len(arts) != 1 || arts[0] != 0 {
		t.Errorf("articulations = %v, want [0]", arts)
	}
	if g.Biconnected(nil) {
		t.Error("star is not biconnected")
	}
}

func TestBiconnectedCycle(t *testing.T) {
	g := New(5)
	for i := 0; i < 5; i++ {
		mustEdge(t, g, NodeID(i), NodeID((i+1)%5), 1)
	}
	if !g.Biconnected(nil) {
		t.Error("cycle should be biconnected")
	}
	if arts := g.ArticulationPoints(nil); len(arts) != 0 {
		t.Errorf("articulations = %v", arts)
	}
	// A two-node graph is not biconnected by convention.
	g2 := New(2)
	mustEdge(t, g2, 0, 1, 1)
	if g2.Biconnected(nil) {
		t.Error("K2 should not count as biconnected")
	}
}

func TestBridgesWithMask(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		mustEdge(t, g, NodeID(i), NodeID((i+1)%4), 1)
	}
	// Masking one cycle edge turns the rest into a path of bridges.
	mask := NewMask().BlockEdge(0, 3)
	br := g.Bridges(mask)
	if len(br) != 3 {
		t.Errorf("masked bridges = %v", br)
	}
}

// bruteForceBridges removes each edge and checks connectivity.
func bruteForceBridges(g *Graph) map[EdgeID]bool {
	out := map[EdgeID]bool{}
	base := len(g.Components(nil))
	for _, e := range g.Edges() {
		mask := NewMask().BlockEdge(e.A, e.B)
		if len(g.Components(mask)) > base {
			out[e] = true
		}
	}
	return out
}

// bruteForceArticulations removes each node and checks connectivity.
func bruteForceArticulations(g *Graph) map[NodeID]bool {
	out := map[NodeID]bool{}
	base := len(g.Components(nil))
	for v := 0; v < g.NumNodes(); v++ {
		mask := NewMask().BlockNode(NodeID(v))
		if len(g.Components(mask)) > base {
			out[NodeID(v)] = true
		}
	}
	return out
}

func TestBridgesAndArticulationsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(20)
		g := randomConnectedGraph(rng, n, rng.Intn(2*n))
		want := bruteForceBridges(g)
		got := g.Bridges(nil)
		if len(got) != len(want) {
			t.Fatalf("trial %d: bridges %v, brute force %v", trial, got, want)
		}
		for _, e := range got {
			if !want[e] {
				t.Fatalf("trial %d: false bridge %v", trial, e)
			}
		}
		wantArts := bruteForceArticulations(g)
		gotArts := g.ArticulationPoints(nil)
		if len(gotArts) != len(wantArts) {
			t.Fatalf("trial %d: articulations %v, brute force %v", trial, gotArts, wantArts)
		}
		for _, v := range gotArts {
			if !wantArts[v] {
				t.Fatalf("trial %d: false articulation %v", trial, v)
			}
		}
	}
}

// randomBiconnectedGraph keeps sampling denser random graphs until one is
// biconnected.
func randomBiconnectedGraph(t *testing.T, rng *rand.Rand, n int) *Graph {
	t.Helper()
	for tries := 0; tries < 200; tries++ {
		g := randomConnectedGraph(rng, n, 3*n)
		if g.Biconnected(nil) {
			return g
		}
	}
	t.Fatal("could not sample a biconnected graph")
	return nil
}

func TestSTNumberingOnCycle(t *testing.T) {
	g := New(5)
	for i := 0; i < 5; i++ {
		mustEdge(t, g, NodeID(i), NodeID((i+1)%5), 1)
	}
	num, err := g.STNumbering(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if num[0] != 1 || num[1] != 5 {
		t.Errorf("endpoints: s=%d t=%d", num[0], num[1])
	}
	assertSTProperty(t, g, num, 0, 1)
}

func TestSTNumberingErrors(t *testing.T) {
	g := line(t, 4)
	if _, err := g.STNumbering(0, 2); err == nil {
		t.Error("non-edge (s,t) should fail")
	}
	if _, err := g.STNumbering(0, 1); err == nil {
		t.Error("line graph is not biconnected; should fail")
	}
	if _, err := g.STNumbering(0, 99); err == nil {
		t.Error("unknown endpoint should fail")
	}
}

func TestSTNumberingRandomBiconnected(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(25)
		g := randomBiconnectedGraph(t, rng, n)
		// Any edge can serve as (s, t).
		e := g.Edges()[rng.Intn(g.NumEdges())]
		num, err := g.STNumbering(e.A, e.B)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertSTProperty(t, g, num, e.A, e.B)
	}
}

// assertSTProperty checks num is a bijection onto 1..n with s=1, t=n and the
// both-sides neighbor property.
func assertSTProperty(t *testing.T, g *Graph, num map[NodeID]int, s, tt NodeID) {
	t.Helper()
	n := g.NumNodes()
	seen := make([]bool, n+1)
	for _, v := range num {
		if v < 1 || v > n || seen[v] {
			t.Fatalf("numbering not a bijection: %v", num)
		}
		seen[v] = true
	}
	if num[s] != 1 || num[tt] != n {
		t.Fatalf("s=%d t=%d", num[s], num[tt])
	}
	for v, nv := range num {
		if v == s || v == tt {
			continue
		}
		lower, higher := false, false
		for _, arc := range g.Neighbors(v) {
			if num[arc.To] < nv {
				lower = true
			}
			if num[arc.To] > nv {
				higher = true
			}
		}
		if !lower || !higher {
			t.Fatalf("vertex %d (num %d) lacks a lower or higher neighbor", v, nv)
		}
	}
}
