package graph

import "testing"

func TestEccentricityAndDiameter(t *testing.T) {
	g := line(t, 5) // unit weights: diameter 4
	ecc, far := g.Eccentricity(0, nil)
	if ecc != 4 || far != 4 {
		t.Errorf("Eccentricity(0) = %v, %v", ecc, far)
	}
	ecc2, _ := g.Eccentricity(2, nil)
	if ecc2 != 2 {
		t.Errorf("Eccentricity(2) = %v", ecc2)
	}
	if d := g.Diameter(nil); d != 4 {
		t.Errorf("Diameter = %v", d)
	}
	// Mask shrinks the reachable set; eccentricity ignores unreachable.
	mask := NewMask().BlockEdge(2, 3)
	if ecc3, _ := g.Eccentricity(0, mask); ecc3 != 2 {
		t.Errorf("masked Eccentricity(0) = %v", ecc3)
	}
}

func TestDiameterIgnoresIsolated(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1, 5)
	if d := g.Diameter(nil); d != 5 {
		t.Errorf("Diameter = %v", d)
	}
	ecc, far := g.Eccentricity(2, nil)
	if ecc != 0 || far != 2 {
		t.Errorf("isolated eccentricity = %v, %v", ecc, far)
	}
}

func TestHopDistance(t *testing.T) {
	g := diamond(t) // 0-1-3 (w 1+1), 0-2-3 (w 2+2)
	if h := g.HopDistance(0, 3, nil); h != 2 {
		t.Errorf("HopDistance = %d, want 2", h)
	}
	if h := g.HopDistance(0, 0, nil); h != 0 {
		t.Errorf("self distance = %d", h)
	}
	mask := NewMask().BlockNode(1).BlockNode(2)
	if h := g.HopDistance(0, 3, mask); h != -1 {
		t.Errorf("unreachable = %d", h)
	}
	if h := g.HopDistance(0, 99, nil); h != -1 {
		t.Errorf("unknown node = %d", h)
	}
}
