package graph

import (
	"sync"

	"smrp/internal/pqueue"
)

// heapItem is one priority-queue entry of a sweep: a node and its tentative
// distance. Ordering is (dist, node) — the node tie-break keeps settle order,
// and therefore every sweep result, deterministic.
type heapItem struct {
	node NodeID
	dist float64
}

// Before implements pqueue.Ordered.
func (a heapItem) Before(b heapItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.node < b.node
}

// csrView is a compressed-sparse-row snapshot of the graph's adjacency:
// node u's arcs occupy to[rowStart[u]:rowStart[u+1]] (same order as
// Graph.Neighbors(u)), with weights in wt at the same indices. The flat
// layout keeps the Dijkstra relaxation loop on two contiguous arrays instead
// of chasing per-node slice headers, which is measurably friendlier to the
// cache on evaluation-scale graphs.
//
// A view is immutable once built; Graph.csrNow rebuilds lazily whenever the
// graph's structural version moves.
type csrView struct {
	version  uint64
	rowStart []int32
	to       []NodeID
	wt       []float64
}

// csrNow returns a CSR view current for the graph's structural version,
// building one on first use. Safe for concurrent readers under the package's
// standard contract (mutate single-threaded, then share read-only): racing
// builders produce identical views and the atomic pointer keeps loads and
// stores well-ordered.
func (g *Graph) csrNow() *csrView {
	if c := g.csr.Load(); c != nil && c.version == g.version {
		return c
	}
	n := len(g.adj)
	arcs := 0
	for _, a := range g.adj {
		arcs += len(a)
	}
	c := &csrView{
		version:  g.version,
		rowStart: make([]int32, n+1),
		to:       make([]NodeID, 0, arcs),
		wt:       make([]float64, 0, arcs),
	}
	for u, as := range g.adj {
		c.rowStart[u] = int32(len(c.to))
		for _, a := range as {
			c.to = append(c.to, a.To)
			c.wt = append(c.wt, a.Weight)
		}
	}
	c.rowStart[n] = int32(len(c.to))
	g.csr.Store(c)
	return c
}

// sweepPool recycles Sweep scratch state across calls and goroutines. A
// pooled sweep keeps its epoch-stamped arrays and heap storage, so the
// steady-state cost of a sweep is zero heap allocations (see
// TestSweepSteadyStateAllocs).
var sweepPool = sync.Pool{New: func() any { return new(Sweep) }}

// Sweep is a reusable single-source shortest-path computation (the
// repository's Dijkstra core). One Sweep holds the per-run scratch arena —
// epoch-stamped dist/parent/settled arrays plus the binary heap — so that
// repeated runs allocate nothing once warm. Graph.Dijkstra, ShortestPath,
// NearestOf and the candidate enumeration in internal/core all execute on
// this engine.
//
// Usage:
//
//	sw := g.NewSweep()
//	defer sw.Release()
//	sw.Run(src, mask, absorbing)   // or internal run variants
//	... sw.Reached / sw.Dist / sw.PathTo ...
//
// Results stay valid until the next Run or Release. A Sweep is not safe for
// concurrent use; acquire one per goroutine (the pool makes that cheap).
type Sweep struct {
	g *Graph
	n int
	// epoch stamps validity: seen[v] == epoch means dist/parent hold values
	// for the current run; settled[v] == epoch means v left the queue. The
	// stamps make per-run initialization O(1) instead of O(V) clears.
	epoch   uint32
	seen    []uint32
	settled []uint32
	dist    []float64
	parent  []NodeID
	heap    pqueue.Heap[heapItem]
	// settledCount tallies nodes settled by the last run. Graph.dijkstra
	// feeds it into the package-wide SPFNodesSettled counter so full builds
	// and incremental delta repairs are comparable; early-exit point queries,
	// nearest-of sweeps and raw Sweep users (candidate enumeration, test
	// oracles) deliberately do not contribute (see metrics.SPFStats).
	settledCount int
}

// NewSweep acquires a pooled sweep bound to g. Release it when done.
func (g *Graph) NewSweep() *Sweep {
	s := sweepPool.Get().(*Sweep)
	s.g = g
	return s
}

// Release returns the sweep (and its scratch arrays) to the pool. The sweep
// must not be used afterwards.
func (s *Sweep) Release() {
	s.g = nil
	sweepPool.Put(s)
}

// begin prepares the scratch arena for a fresh run: grow arrays to the
// graph's size if needed and advance the validity epoch.
func (s *Sweep) begin() {
	n := s.g.NumNodes()
	if n > len(s.seen) {
		s.seen = make([]uint32, n)
		s.settled = make([]uint32, n)
		s.dist = make([]float64, n)
		s.parent = make([]NodeID, n)
		s.epoch = 0
	}
	s.n = n
	s.epoch++
	if s.epoch == 0 { // epoch counter wrapped: stamps are ambiguous, reset
		clear(s.seen)
		clear(s.settled)
		s.epoch = 1
	}
	s.heap.Reset()
	s.settledCount = 0
}

// Run executes a full deterministic Dijkstra sweep from src over the graph
// minus the mask, with optional absorbing semantics: when absorbing is
// non-nil, nodes for which it reports true are settled as path endpoints but
// never relaxed through — paths may end at an absorbing node yet cannot pass
// beyond one. This answers "shortest connection from src to every node of a
// set, with set-interior-free paths" in a single O(E log V) pass; the SMRP
// candidate enumeration uses it with absorbing = tree membership. src itself
// is always relaxed outward even if absorbing(src) holds (it is the path
// start, not an endpoint).
//
// Tie-breaking matches Graph.Dijkstra exactly: equal-distance heap entries
// settle in ascending node order, and among equal-length relaxations the
// smallest parent ID wins, so results are byte-stable across runs.
func (s *Sweep) Run(src NodeID, mask *Mask, absorbing func(NodeID) bool) {
	s.run(src, mask, Invalid, absorbing, nil, 0)
}

// RunBounded is Run with an early exit: the sweep stops as soon as want
// absorbing nodes (excluding src) have settled. When want counts every
// unmasked absorbing node, the exit happens exactly when the last of them
// settles — at which point all of their distances and parent chains are final
// (settled nodes are never re-relaxed), so every absorbing endpoint reads
// identically to a full Run. Nodes that would have settled after the last
// absorbing one are simply skipped; that is the entire saving. With want <= 0
// or more absorbing nodes than are reachable, RunBounded degrades to Run.
//
// The batched join path uses this to stop each joiner-rooted candidate sweep
// the moment every live on-tree merger has settled, instead of flooding the
// rest of the topology (see core.JoinBatch and SettledCount).
func (s *Sweep) RunBounded(src NodeID, mask *Mask, absorbing func(NodeID) bool, want int) {
	s.run(src, mask, Invalid, absorbing, nil, want)
}

// SettledCount reports how many nodes the last run settled — the unit of SPF
// work this repository uses as its CI-stable performance evidence (wall-clock
// is noise on a single-core container; settled nodes are exact and
// deterministic).
func (s *Sweep) SettledCount() int { return s.settledCount }

// run is the shared sweep core. Knobs:
//
//   - target != Invalid: stop as soon as target settles (early exit; its
//     dist/parent chain is final at that point because settled nodes are
//     never re-relaxed).
//   - absorbing != nil: absorbing nodes settle but do not relax outward.
//   - accept != nil: stop at the first settled node for which accept holds
//     (including src) and return it.
//   - absorbWant > 0: stop once that many absorbing nodes (excluding src)
//     have settled (see RunBounded).
//
// It returns the settled accept/target node, or Invalid when the sweep ran
// to exhaustion (or src was invalid/blocked).
func (s *Sweep) run(src NodeID, mask *Mask, target NodeID, absorbing func(NodeID) bool, accept func(NodeID) bool, absorbWant int) NodeID {
	s.begin()
	g := s.g
	if !g.valid(src) || mask.NodeBlocked(src) {
		return Invalid
	}
	cs := g.csrNow()
	// Hoist the mask shape checks out of the relaxation loop: most sweeps
	// run against a nil/empty mask (plain SPF) or a node-only mask
	// (candidate enumeration), and the map probes are the loop's only
	// non-array memory traffic.
	checkNodes := mask.hasNodeBlocks()
	checkEdges := mask.hasEdgeBlocks()
	// Hoist the node-block representation too: on bitset-backed masks the
	// per-arc probe below is a shift+and on a contiguous word array (mbits),
	// with the map probe (mnodes) only as the small-mask fallback.
	var mbits []uint64
	var mnodes map[NodeID]bool
	if checkNodes {
		mbits, mnodes = mask.bits, mask.nodes
	}

	s.seen[src] = s.epoch
	s.dist[src] = 0
	s.parent[src] = Invalid
	s.heap.Push(heapItem{node: src, dist: 0})

	for {
		item, ok := s.heap.Pop()
		if !ok {
			return Invalid
		}
		u := item.node
		if s.settled[u] == s.epoch || item.dist > s.dist[u] {
			continue // stale heap entry (superseded by a better relaxation)
		}
		s.settled[u] = s.epoch
		s.settledCount++
		if accept != nil && accept(u) {
			return u
		}
		if u == target {
			return u
		}
		if absorbing != nil && u != src && absorbing(u) {
			if absorbWant > 0 {
				absorbWant--
				if absorbWant == 0 {
					return Invalid // every wanted endpoint settled; stop early
				}
			}
			continue // settled as an endpoint; never relax through
		}
		du := s.dist[u]
		for i, end := cs.rowStart[u], cs.rowStart[u+1]; i < end; i++ {
			v := cs.to[i]
			if s.settled[v] == s.epoch {
				continue
			}
			if checkNodes {
				if mbits != nil {
					if w := uint(v) >> 6; w < uint(len(mbits)) && mbits[w]>>(uint(v)&63)&1 != 0 {
						continue
					}
				} else if mnodes[v] {
					continue
				}
			}
			if checkEdges && mask.edges[MakeEdgeID(u, v)] {
				continue
			}
			nd := du + cs.wt[i]
			if s.seen[v] != s.epoch {
				s.seen[v] = s.epoch
			} else if !(nd < s.dist[v] || (nd == s.dist[v] && u < s.parent[v])) {
				continue
			}
			// Deterministic tie-breaking on parent ID keeps shortest-path
			// trees stable when multiple equal-length paths exist.
			s.dist[v] = nd
			s.parent[v] = u
			s.heap.Push(heapItem{node: v, dist: nd})
		}
	}
}

// Reached reports whether n was reached by the last run. (For early-exit
// runs only nodes settled before the exit are meaningful.)
func (s *Sweep) Reached(n NodeID) bool {
	return n >= 0 && int(n) < s.n && s.seen[n] == s.epoch
}

// Dist returns the shortest distance from the run's source to n, or
// Unreachable when n was not reached.
func (s *Sweep) Dist(n NodeID) float64 {
	if !s.Reached(n) {
		return Unreachable
	}
	return s.dist[n]
}

// Parent returns n's predecessor on its shortest path (Invalid at the source
// or when unreached).
func (s *Sweep) Parent(n NodeID) NodeID {
	if !s.Reached(n) {
		return Invalid
	}
	return s.parent[n]
}

// chainLen returns the number of nodes on the parent chain from n to the
// source, or 0 when unreached.
func (s *Sweep) chainLen(n NodeID) int {
	if !s.Reached(n) {
		return 0
	}
	ln := 0
	for cur := n; cur != Invalid; cur = s.parent[cur] {
		ln++
	}
	return ln
}

// PathTo returns the shortest path source→…→n, or nil when unreached.
func (s *Sweep) PathTo(n NodeID) Path {
	ln := s.chainLen(n)
	if ln == 0 {
		return nil
	}
	p := make(Path, ln)
	for cur, i := n, ln-1; cur != Invalid; cur, i = s.parent[cur], i-1 {
		p[i] = cur
	}
	return p
}

// PathFrom returns the shortest path in n→…→source orientation, or nil when
// unreached. The candidate enumeration uses this to materialize
// merger→…→joiner connections directly from a joiner-rooted sweep.
func (s *Sweep) PathFrom(n NodeID) Path {
	ln := s.chainLen(n)
	if ln == 0 {
		return nil
	}
	return s.AppendPathFrom(make(Path, 0, ln), n)
}

// AppendPathFrom appends the n→…→source path to buf and returns it,
// allocating only if buf lacks capacity — the zero-allocation variant of
// PathFrom for steady-state hot loops.
func (s *Sweep) AppendPathFrom(buf Path, n NodeID) Path {
	if !s.Reached(n) {
		return buf
	}
	for cur := n; cur != Invalid; cur = s.parent[cur] {
		buf = append(buf, cur)
	}
	return buf
}
