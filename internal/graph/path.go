package graph

import (
	"fmt"
	"strings"
)

// Path is a sequence of nodes connected by edges in a graph. A valid path has
// at least one node; a single-node path has zero length.
type Path []NodeID

// Len returns the number of edges (hops) in the path.
func (p Path) Len() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// First returns the first node of the path; it panics on an empty path.
func (p Path) First() NodeID { return p[0] }

// Last returns the last node of the path; it panics on an empty path.
func (p Path) Last() NodeID { return p[len(p)-1] }

// Weight returns the total weight of the path in g. It returns
// (0, error) if any consecutive pair is not an edge of g.
func (p Path) Weight(g *Graph) (float64, error) {
	var total float64
	for i := 0; i+1 < len(p); i++ {
		w, ok := g.EdgeWeight(p[i], p[i+1])
		if !ok {
			return 0, fmt.Errorf("path weight: %d-%d is not an edge", p[i], p[i+1])
		}
		total += w
	}
	return total, nil
}

// Edges returns the canonical edge IDs along the path, in order.
func (p Path) Edges() []EdgeID {
	if len(p) < 2 {
		return nil
	}
	out := make([]EdgeID, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		out = append(out, MakeEdgeID(p[i], p[i+1]))
	}
	return out
}

// ContainsNode reports whether n appears on the path.
func (p Path) ContainsNode(n NodeID) bool {
	for _, v := range p {
		if v == n {
			return true
		}
	}
	return false
}

// ContainsEdge reports whether the undirected edge e is traversed by the
// path.
func (p Path) ContainsEdge(e EdgeID) bool {
	for i := 0; i+1 < len(p); i++ {
		if MakeEdgeID(p[i], p[i+1]) == e {
			return true
		}
	}
	return false
}

// Reverse returns a new path with the node order reversed.
func (p Path) Reverse() Path {
	out := make(Path, len(p))
	for i, n := range p {
		out[len(p)-1-i] = n
	}
	return out
}

// Concat joins p with q, where p's last node must equal q's first node. The
// shared node appears once in the result.
func (p Path) Concat(q Path) (Path, error) {
	if len(p) == 0 {
		return append(Path(nil), q...), nil
	}
	if len(q) == 0 {
		return append(Path(nil), p...), nil
	}
	if p.Last() != q.First() {
		return nil, fmt.Errorf("concat: paths do not share a junction (%d vs %d)", p.Last(), q.First())
	}
	out := make(Path, 0, len(p)+len(q)-1)
	out = append(out, p...)
	out = append(out, q[1:]...)
	return out, nil
}

// IsSimple reports whether no node repeats on the path.
func (p Path) IsSimple() bool {
	seen := make(map[NodeID]bool, len(p))
	for _, n := range p {
		if seen[n] {
			return false
		}
		seen[n] = true
	}
	return true
}

// Validate checks that every consecutive pair of nodes is an edge of g.
func (p Path) Validate(g *Graph) error {
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			return fmt.Errorf("path: %d-%d is not an edge", p[i], p[i+1])
		}
	}
	return nil
}

// String implements fmt.Stringer, e.g. "3→7→1".
func (p Path) String() string {
	if len(p) == 0 {
		return "<empty>"
	}
	parts := make([]string, len(p))
	for i, n := range p {
		parts[i] = fmt.Sprintf("%d", n)
	}
	return strings.Join(parts, "→")
}
