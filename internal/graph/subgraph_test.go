package graph

import "testing"

func TestSubgraph(t *testing.T) {
	g := New(5)
	mustEdge(t, g, 0, 1, 1)
	mustEdge(t, g, 1, 2, 2)
	mustEdge(t, g, 2, 3, 3)
	mustEdge(t, g, 3, 4, 4)
	mustEdge(t, g, 0, 4, 5)
	g.SetPos(2, Point{X: 7, Y: 8})

	sub, nm, err := g.Subgraph([]NodeID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("sub shape: %d nodes %d edges", sub.NumNodes(), sub.NumEdges())
	}
	// ID translation both ways.
	s2, ok := nm.ToSub(2)
	if !ok {
		t.Fatal("node 2 missing from map")
	}
	if f, ok := nm.ToFull(s2); !ok || f != 2 {
		t.Errorf("round trip = %d,%v", f, ok)
	}
	if _, ok := nm.ToSub(4); ok {
		t.Error("node 4 should not be in the subgraph")
	}
	if _, ok := nm.ToFull(99); ok {
		t.Error("unknown sub ID should not map")
	}
	// Weights and positions carried over.
	s1, _ := nm.ToSub(1)
	if w, ok := sub.EdgeWeight(s1, s2); !ok || w != 2 {
		t.Errorf("edge weight = %v,%v", w, ok)
	}
	if p := sub.Pos(s2); p.X != 7 || p.Y != 8 {
		t.Errorf("pos = %+v", p)
	}
	// Edges to excluded nodes are absent.
	s3, _ := nm.ToSub(3)
	for _, arc := range sub.Neighbors(s3) {
		if f, _ := nm.ToFull(arc.To); f == 4 {
			t.Error("edge to excluded node leaked into subgraph")
		}
	}
}

func TestSubgraphErrors(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1, 1)
	if _, _, err := g.Subgraph([]NodeID{0, 9}); err == nil {
		t.Error("unknown node should fail")
	}
	if _, _, err := g.Subgraph([]NodeID{0, 0}); err == nil {
		t.Error("duplicate node should fail")
	}
}

func TestNodeMapPathToFull(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 1, 2, 1)
	mustEdge(t, g, 2, 3, 1)
	sub, nm, err := g.Subgraph([]NodeID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := sub.ShortestPath(0, 2, nil) // sub IDs: 1→3 in full terms
	full, err := nm.PathToFull(p)
	if err != nil {
		t.Fatal(err)
	}
	if full.String() != "1→2→3" {
		t.Errorf("full path = %v", full)
	}
	if _, err := nm.PathToFull(Path{99}); err == nil {
		t.Error("out-of-range path should fail")
	}
}
