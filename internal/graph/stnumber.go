package graph

import (
	"errors"
	"fmt"
)

// ErrNotBiconnected is returned when an st-numbering is requested on a
// graph that is not biconnected (no st-numbering exists).
var ErrNotBiconnected = errors.New("graph: not biconnected")

// STNumbering computes an st-numbering of the biconnected graph g for the
// edge (s, t): a bijection num: V → {1..n} with num[s] = 1, num[t] = n, and
// every other vertex adjacent to both a lower- and a higher-numbered vertex.
// This is Tarjan's streamlined list-based algorithm (1986): DFS from s with
// (s, t) as the first tree edge, then insert each vertex into an ordered
// list before or after its DFS parent according to the sign of its
// low-point.
//
// st-numberings are the backbone of Médard et al.'s redundant trees: the
// increasing-order tree and the decreasing-order tree are internally
// vertex-disjoint, so any single failure leaves every node attached to the
// source by at least one of them.
func (g *Graph) STNumbering(s, t NodeID) (map[NodeID]int, error) {
	if !g.valid(s) || !g.valid(t) {
		return nil, fmt.Errorf("st-numbering: unknown endpoint %d/%d", s, t)
	}
	if !g.HasEdge(s, t) {
		return nil, fmt.Errorf("st-numbering: (%d, %d) is not an edge", s, t)
	}
	n := g.NumNodes()
	pre := make([]int, n)
	low := make([]NodeID, n) // the vertex realizing the low-point
	parent := make([]NodeID, n)
	for i := range pre {
		pre[i] = -1
		parent[i] = Invalid
	}

	// DFS from s traversing (s, t) first; record preorder and low-points
	// (as vertices, so the sign rule can look them up).
	preorder := make([]NodeID, 0, n)
	type frame struct {
		node NodeID
		idx  int
	}
	visit := func(v NodeID, par NodeID, order int) {
		pre[v] = order
		low[v] = v
		parent[v] = par
		preorder = append(preorder, v)
	}
	visit(s, Invalid, 0)
	order := 1
	visit(t, s, order)
	order++
	stack := []frame{{node: s, idx: -1}, {node: t}}
	// s's frame uses idx=-1 as a marker: its only tree edge is (s,t),
	// handled explicitly; remaining neighbors of s are back edges for low
	// computation of... they are handled as back edges from the other side.
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.idx < 0 {
			// The root frame: all work flows through t's subtree.
			stack = stack[:len(stack)-1]
			continue
		}
		adj := g.adj[f.node]
		advanced := false
		for f.idx < len(adj) {
			arc := adj[f.idx]
			f.idx++
			v := arc.To
			if v == parent[f.node] {
				continue
			}
			if pre[v] == -1 {
				visit(v, f.node, order)
				order++
				stack = append(stack, frame{node: v})
				advanced = true
				break
			}
			if pre[v] < pre[low[f.node]] {
				low[f.node] = v
			}
		}
		if advanced {
			continue
		}
		done := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if p := parent[done.node]; p != Invalid {
			if pre[low[done.node]] < pre[low[p]] {
				low[p] = low[done.node]
			}
		}
	}
	if len(preorder) != n {
		return nil, fmt.Errorf("%w: graph disconnected", ErrNotBiconnected)
	}

	// Tarjan's sign/list pass.
	const (
		minus = -1
		plus  = +1
	)
	sign := make(map[NodeID]int, n)
	sign[s] = minus
	// Doubly-linked list over node IDs.
	next := make(map[NodeID]NodeID, n)
	prev := make(map[NodeID]NodeID, n)
	next[s], prev[t] = t, s
	next[t], prev[s] = Invalid, Invalid
	insertBefore := func(v, ref NodeID) {
		p := prev[ref]
		next[v], prev[v] = ref, p
		prev[ref] = v
		if p != Invalid {
			next[p] = v
		}
	}
	insertAfter := func(v, ref NodeID) {
		nx := next[ref]
		prev[v], next[v] = ref, nx
		next[ref] = v
		if nx != Invalid {
			prev[nx] = v
		}
	}
	for _, v := range preorder {
		if v == s || v == t {
			continue
		}
		p := parent[v]
		if sign[low[v]] == minus {
			insertBefore(v, p)
			sign[p] = plus
		} else {
			insertAfter(v, p)
			sign[p] = minus
		}
	}

	// Walk the list from s assigning numbers.
	num := make(map[NodeID]int, n)
	i := 1
	for cur := s; cur != Invalid; cur = next[cur] {
		num[cur] = i
		i++
	}
	if len(num) != n || num[s] != 1 || num[t] != n {
		return nil, fmt.Errorf("%w: list construction failed (s=%d t=%d assigned=%d)",
			ErrNotBiconnected, num[s], num[t], len(num))
	}
	// Verify the st-property; it fails exactly when g was not biconnected.
	for v, nv := range num {
		if v == s || v == t {
			continue
		}
		lower, higher := false, false
		for _, arc := range g.adj[v] {
			if num[arc.To] < nv {
				lower = true
			}
			if num[arc.To] > nv {
				higher = true
			}
		}
		if !lower || !higher {
			return nil, fmt.Errorf("%w: vertex %d violates the st-property", ErrNotBiconnected, v)
		}
	}
	return num, nil
}
