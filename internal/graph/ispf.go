// Incremental SPF (iSPF): Ramalingam–Reps-style delta repair of memoized
// shortest-path trees.
//
// Every failure or repair event changes the active mask's fingerprint, which
// makes the SPF cache go cold even though a single failed link or node
// typically invalidates only the small subtree hanging below it. This file
// repairs a resident tree in place instead of re-running Dijkstra over the
// whole topology:
//
//   - Elements *added* to the mask (failures): classify every node as alive
//     (its old shortest path avoids all newly dead elements), gone (newly
//     blocked, or already unreachable), or orphaned (its old path crossed a
//     dead element) with one O(V) memoized parent-chain walk; reset the
//     orphans, seed each from its frontier of still-valid neighbors, and run
//     Dijkstra over the orphan set only.
//   - Elements *removed* from the mask (repairs): seed the heap with the
//     revived node/edge endpoints and ripple strict distance improvements
//     outward; equal-distance relaxations update only the parent (smaller ID
//     wins) and provably never need to propagate.
//
// The repaired tree is bit-identical to a from-scratch sweep: the final
// (dist, parent) pair of Dijkstra with this package's tie-breaking is a pure
// function of (graph, source, mask) — dist is the true shortest distance and
// parent[v] is the minimum-ID neighbor u with dist[u] + w(u,v) == dist[v] —
// so producing the same function by another route yields byte-identical
// downstream study output. TestISPFEquivalence pins this against a sweep
// oracle over random topologies and event sequences.
package graph

import (
	"sync"
	"sync/atomic"

	"smrp/internal/metrics"
	"smrp/internal/pqueue"
)

// Package-wide SPF work counters (see metrics.SPFStats for field meaning).
// They are process-global rather than per-cache so a study spanning many
// per-trial topologies still reports one comparable total.
var (
	spfFullRuns     atomic.Uint64
	spfDeltaRuns    atomic.Uint64
	spfNodesSettled atomic.Uint64
	spfCacheHits    atomic.Uint64
	spfCacheMisses  atomic.Uint64

	// spfDeltaOff disables the delta-repair path: every cache miss becomes
	// a full sweep. Used to measure the full-recompute baseline
	// deterministically.
	spfDeltaOff atomic.Bool
)

// SPFCounters returns a snapshot of the process-wide SPF work counters.
// The counters are atomics: snapshotting, resetting, and incrementing may
// all race freely (e.g. a /metrics scrape during live traffic), though a
// snapshot taken concurrently with a reset can mix pre- and post-reset
// fields.
func SPFCounters() metrics.SPFStats {
	return metrics.SPFStats{
		FullRuns:     spfFullRuns.Load(),
		DeltaRuns:    spfDeltaRuns.Load(),
		NodesSettled: spfNodesSettled.Load(),
		CacheHits:    spfCacheHits.Load(),
		CacheMisses:  spfCacheMisses.Load(),
	}
}

// ResetSPFCounters zeroes the process-wide SPF work counters.
func ResetSPFCounters() {
	spfFullRuns.Store(0)
	spfDeltaRuns.Store(0)
	spfNodesSettled.Store(0)
	spfCacheHits.Store(0)
	spfCacheMisses.Store(0)
}

// SetSPFDelta enables (default) or disables the incremental-SPF path. With
// it disabled every cache miss runs a full sweep — the pre-optimization
// behavior, which is the full-recompute baseline the delta counters are
// compared against. Results are identical either way.
//
// The switch is process-global state shared by every cache and every
// session. Configure it once at startup (smrp-serve does this from its
// -spf-delta flag before serving begins), never per request or per
// session: although the flag itself is an atomic and toggling is safe from
// a data-race standpoint, a mid-run flip changes which code path
// concurrent lookups take and makes work counters incomparable.
func SetSPFDelta(enabled bool) { spfDeltaOff.Store(!enabled) }

// SPFDeltaEnabled reports whether the delta-repair path is active.
func SPFDeltaEnabled() bool { return !spfDeltaOff.Load() }

// Node classification states for the failure phase of a repair.
const (
	ispfAlive  uint8 = iota + 1 // old shortest path avoids all dead elements
	ispfOrphan                  // old path crossed a dead element: re-relax
	ispfGone                    // newly blocked, or already unreachable
)

// ispfScratch is the pooled per-repair arena: epoch-stamped classification
// state, the phase-B settled stamps, the walk/orphan work lists, the heap,
// and the diff buffers. Steady-state repairs allocate nothing
// (TestISPFRepairSteadyStateAllocs).
type ispfScratch struct {
	epoch   uint32
	stamp   []uint32 // stamp[v] == epoch: state[v] is valid for this repair
	state   []uint8
	setB    []uint32 // setB[v] == epoch: v settled in the improvement ripple
	stk     []NodeID
	orphans []NodeID
	heap    pqueue.Heap[heapItem]
	added   []MaskElem
	removed []MaskElem
	// split views of added/removed, rebuilt per repair
	addNodes []NodeID
	addEdges []EdgeID
	remEdges []EdgeID
}

var ispfPool = sync.Pool{New: func() any { return new(ispfScratch) }}

// begin sizes the arena for an n-node graph and advances the validity epoch.
func (sc *ispfScratch) begin(n int) {
	if n > len(sc.stamp) {
		sc.stamp = make([]uint32, n)
		sc.state = make([]uint8, n)
		sc.setB = make([]uint32, n)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stamps ambiguous, hard reset
		clear(sc.stamp)
		clear(sc.setB)
		sc.epoch = 1
	}
	sc.heap.Reset()
	sc.stk = sc.stk[:0]
	sc.orphans = sc.orphans[:0]
	sc.addNodes = sc.addNodes[:0]
	sc.addEdges = sc.addEdges[:0]
	sc.remEdges = sc.remEdges[:0]
}

// cloneTree returns a deep, privately owned copy of t for clone-on-write
// repair.
func cloneTree(t *SPTree) *SPTree {
	nt := &SPTree{
		Source: t.Source,
		Dist:   make([]float64, len(t.Dist)),
		Parent: make([]NodeID, len(t.Parent)),
	}
	copy(nt.Dist, t.Dist)
	copy(nt.Parent, t.Parent)
	return nt
}

// ispfRepair repairs t — a private clone of a tree computed under some old
// mask — so that it equals the full Dijkstra tree under the new mask, where
// added/removed is the (sorted, bounded) element diff new-minus-old. It
// returns the number of heap-settled nodes and whether the repair applied;
// ok=false means the caller must fall back to a full sweep (t may be
// partially modified and must be discarded). The repair gives up only on
// degenerate sources: the new mask blocks the source, or the old tree never
// reached it (all-unreachable lineage carries no usable distances).
func ispfRepair(g *Graph, t *SPTree, added, removed []MaskElem, mask *Mask, sc *ispfScratch) (settled int, ok bool) {
	src := t.Source
	n := g.NumNodes()
	if len(t.Dist) != n || mask.NodeBlocked(src) || t.Dist[src] != 0 {
		return 0, false
	}
	sc.begin(n)
	cs := g.csrNow()
	checkEdges := mask.hasEdgeBlocks()
	checkNodes := mask.hasNodeBlocks()

	// Phase A must compute exactly the tree under (old mask ∪ added) — the
	// pure-deletion step its correctness argument is about — so edges revived
	// by this same delta stay off-limits until phase B. Otherwise an orphan
	// can be re-attached through a revived edge at its final distance, phase
	// B's seed relaxation then sees no improvement and never ripples, and
	// alive nodes downstream (which phase A deliberately never re-relaxes)
	// keep their stale distances. Revived *nodes* need no such care: they
	// were blocked under the old mask, hence unreachable in the old tree,
	// hence classified gone and excluded from phase A automatically.
	for _, e := range removed {
		if e.IsEdge {
			sc.remEdges = append(sc.remEdges, e.Edge)
		}
	}
	checkRevived := len(sc.remEdges) > 0

	// --- Phase A: failures (elements added to the mask). ---
	// Skip entirely when no added element can touch the tree: a blocked node
	// that was already unreachable, or a blocked edge that is not a tree
	// edge, changes nothing (removing a non-tree edge cannot shorten any
	// path, and the parent argmin is unaffected because only the current
	// parent's edge is a tree edge).
	touches := false
	for _, e := range added {
		if !e.IsEdge {
			if !g.valid(e.Node) {
				continue
			}
			sc.addNodes = append(sc.addNodes, e.Node)
			if t.Reachable(e.Node) {
				touches = true
			}
			continue
		}
		if !g.valid(e.Edge.A) || !g.valid(e.Edge.B) {
			continue
		}
		sc.addEdges = append(sc.addEdges, e.Edge)
		if t.Parent[e.Edge.B] == e.Edge.A || t.Parent[e.Edge.A] == e.Edge.B {
			touches = true
		}
	}
	if touches {
		// Classify every node with a memoized walk up its parent chain.
		for v := 0; v < n; v++ {
			if sc.stamp[v] == sc.epoch {
				continue
			}
			cur := NodeID(v)
			var st uint8
			for {
				if sc.stamp[cur] == sc.epoch {
					st = sc.state[cur]
					break
				}
				if t.Dist[cur] == Unreachable {
					st = ispfGone
					sc.stamp[cur] = sc.epoch
					sc.state[cur] = st
					break
				}
				if cur == src {
					st = ispfAlive
					sc.stamp[cur] = sc.epoch
					sc.state[cur] = st
					break
				}
				if nodeListHas(sc.addNodes, cur) {
					st = ispfGone
					sc.stamp[cur] = sc.epoch
					sc.state[cur] = st
					break
				}
				p := t.Parent[cur]
				if edgeListHas(sc.addEdges, MakeEdgeID(p, cur)) {
					st = ispfOrphan
					sc.stamp[cur] = sc.epoch
					sc.state[cur] = st
					break
				}
				sc.stk = append(sc.stk, cur)
				cur = p
			}
			// Unwind: a node below an alive parent is alive; below an orphan
			// or gone parent it is orphaned (unless itself newly blocked,
			// which the loop above already caught before descending).
			for i := len(sc.stk) - 1; i >= 0; i-- {
				w := sc.stk[i]
				cst := ispfOrphan
				if st == ispfAlive {
					cst = ispfAlive
				}
				sc.stamp[w] = sc.epoch
				sc.state[w] = cst
				st = cst
			}
			sc.stk = sc.stk[:0]
		}
		// Reset gone and orphaned nodes; remember the orphans (ascending ID,
		// since the pass above runs in ID order).
		for v := 0; v < n; v++ {
			switch sc.state[v] {
			case ispfOrphan:
				t.Dist[v] = Unreachable
				t.Parent[v] = Invalid
				sc.orphans = append(sc.orphans, NodeID(v))
			case ispfGone:
				t.Dist[v] = Unreachable
				t.Parent[v] = Invalid
			}
		}
		// Seed each orphan from its frontier of alive neighbors. Alive
		// distances are final (deleting elements cannot shorten a path, and
		// every alive node's old path survives), so this is exactly the set
		// of relaxations a full sweep would perform across the alive/orphan
		// boundary.
		for _, v := range sc.orphans {
			dv, pv := Unreachable, Invalid
			for i, end := cs.rowStart[v], cs.rowStart[v+1]; i < end; i++ {
				u := cs.to[i]
				if sc.state[u] != ispfAlive || sc.stamp[u] != sc.epoch {
					continue
				}
				if e := MakeEdgeID(u, v); (checkEdges && mask.edges[e]) ||
					(checkRevived && edgeListHas(sc.remEdges, e)) {
					continue
				}
				if nd := t.Dist[u] + cs.wt[i]; nd < dv || (nd == dv && u < pv) {
					dv, pv = nd, u
				}
			}
			if pv != Invalid {
				t.Dist[v] = dv
				t.Parent[v] = pv
				sc.heap.Push(heapItem{node: v, dist: dv})
			}
		}
		// Dijkstra restricted to the orphan set. Orphans settle in global
		// distance order (alive frontier contributions are all seeded), so
		// tie-breaking matches the full sweep exactly.
		for {
			item, popped := sc.heap.Pop()
			if !popped {
				break
			}
			u := item.node
			if sc.state[u] != ispfOrphan || item.dist > t.Dist[u] {
				continue // settled already, or a stale heap entry
			}
			sc.state[u] = ispfAlive // settled: distance is final
			settled++
			du := t.Dist[u]
			for i, end := cs.rowStart[u], cs.rowStart[u+1]; i < end; i++ {
				v := cs.to[i]
				if sc.state[v] != ispfOrphan || sc.stamp[v] != sc.epoch {
					continue // alive nodes are final; gone nodes stay gone
				}
				if e := MakeEdgeID(u, v); (checkEdges && mask.edges[e]) ||
					(checkRevived && edgeListHas(sc.remEdges, e)) {
					continue
				}
				nd := du + cs.wt[i]
				if nd < t.Dist[v] || (nd == t.Dist[v] && u < t.Parent[v]) {
					t.Dist[v] = nd
					t.Parent[v] = u
					sc.heap.Push(heapItem{node: v, dist: nd})
				}
			}
		}
	}

	// --- Phase B: repairs (elements removed from the mask). ---
	// The tree now equals the full sweep under (old mask ∪ added); every
	// distance is an upper bound for the new mask. Seed the revived elements
	// and ripple strict improvements. Equal-distance relaxations only update
	// the parent toward the smaller ID and never propagate: a node whose
	// distance is unchanged keeps its predecessor candidate set except for
	// additions, and every added candidate is either a revived element
	// (seeded here) or a node whose own distance improved (settled by the
	// ripple, which then re-relaxes its neighbors).
	if len(removed) > 0 {
		sc.heap.Reset()
		relax := func(u, v NodeID, w float64) {
			// caller guarantees u reachable and (u,v) usable under mask
			nd := t.Dist[u] + w
			if nd < t.Dist[v] {
				t.Dist[v] = nd
				t.Parent[v] = u
				sc.heap.Push(heapItem{node: v, dist: nd})
			} else if nd == t.Dist[v] && u < t.Parent[v] {
				t.Parent[v] = u // parent-only repair; never propagates
			}
		}
		for _, e := range removed {
			if e.IsEdge {
				u, v := e.Edge.A, e.Edge.B
				w, exists := g.edgeWeightByID(e.Edge)
				if !exists || mask.NodeBlocked(u) || mask.NodeBlocked(v) ||
					(checkEdges && mask.edges[e.Edge]) {
					continue
				}
				if t.Dist[u] != Unreachable {
					relax(u, v, w)
				}
				if t.Dist[v] != Unreachable {
					relax(v, u, w)
				}
				continue
			}
			// Revived node: recompute its attachment from scratch via its
			// usable neighbors, then let it ripple outward when it settles.
			v := e.Node
			if !g.valid(v) || mask.NodeBlocked(v) {
				continue
			}
			for i, end := cs.rowStart[v], cs.rowStart[v+1]; i < end; i++ {
				u := cs.to[i]
				if t.Dist[u] == Unreachable {
					continue
				}
				if checkNodes && mask.nodeBlocked(u) {
					continue
				}
				if checkEdges && mask.edges[MakeEdgeID(u, v)] {
					continue
				}
				relax(u, v, cs.wt[i])
			}
		}
		for {
			item, popped := sc.heap.Pop()
			if !popped {
				break
			}
			u := item.node
			if sc.setB[u] == sc.epoch || item.dist > t.Dist[u] {
				continue
			}
			sc.setB[u] = sc.epoch
			settled++
			du := t.Dist[u]
			for i, end := cs.rowStart[u], cs.rowStart[u+1]; i < end; i++ {
				v := cs.to[i]
				if sc.setB[v] == sc.epoch {
					continue // settled in distance order: final
				}
				if checkNodes && mask.nodeBlocked(v) {
					continue
				}
				if checkEdges && mask.edges[MakeEdgeID(u, v)] {
					continue
				}
				nd := du + cs.wt[i]
				if nd < t.Dist[v] {
					t.Dist[v] = nd
					t.Parent[v] = u
					sc.heap.Push(heapItem{node: v, dist: nd})
				} else if nd == t.Dist[v] && u < t.Parent[v] {
					t.Parent[v] = u
				}
			}
		}
	}
	return settled, true
}

// nodeListHas reports whether n occurs in list (linear scan; diff lists are
// bounded by DefaultDiffLimit, so this beats a map on both allocation and
// constant factor).
func nodeListHas(list []NodeID, n NodeID) bool {
	for _, x := range list {
		if x == n {
			return true
		}
	}
	return false
}

// edgeListHas reports whether e occurs in list (linear scan, see nodeListHas).
func edgeListHas(list []EdgeID, e EdgeID) bool {
	for _, x := range list {
		if x == e {
			return true
		}
	}
	return false
}
