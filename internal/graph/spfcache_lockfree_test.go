package graph

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
)

// lockFreeTestGraph builds a modest random-ish mesh big enough that cache
// hits dominate and several shards are populated.
func lockFreeTestGraph(t testing.TB) *Graph {
	t.Helper()
	const n = 40
	g := New(n)
	for i := NodeID(0); i < n-1; i++ {
		if err := g.AddEdge(i, i+1, 1+float64(i%5)); err != nil {
			t.Fatal(err)
		}
	}
	for i := NodeID(0); i < n-7; i += 3 {
		if err := g.AddEdge(i, i+7, 2+float64(i%3)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestSPFCacheHitZeroAlloc pins that a cache hit allocates nothing: the read
// path loads two atomic pointers and probes one immutable map — no clone, no
// lock, no bookkeeping garbage.
func TestSPFCacheHitZeroAlloc(t *testing.T) {
	g := lockFreeTestGraph(t)
	c := g.EnableSPFCache()
	g.Dijkstra(0, nil) // warm the entry and its lineage head
	allocs := testing.AllocsPerRun(200, func() {
		g.Dijkstra(0, nil)
	})
	if allocs != 0 {
		t.Errorf("cache hit allocates %.1f objects/op, want 0", allocs)
	}
	if h, _ := c.Stats(); h == 0 {
		t.Fatal("warm lookups did not register as hits")
	}
}

// TestSPFCacheHitMutexProfile hammers the hit path from many goroutines with
// mutex profiling at full fidelity and then asserts the runtime recorded no
// lock contention inside the SPF cache. Because the read path holds no lock
// at all, this holds for any scheduling; with the previous RWMutex-sharded
// read path the same hammer could (and on multicore hardware did) produce
// spfcache contention records.
func TestSPFCacheHitMutexProfile(t *testing.T) {
	old := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(old)

	g := lockFreeTestGraph(t)
	g.EnableSPFCache()
	masks := []*Mask{nil, NewMask().BlockNode(5), NewMask().BlockEdge(2, 3)}
	for src := NodeID(0); src < 8; src++ {
		for _, m := range masks {
			g.Dijkstra(src, m) // populate: every query below is a hit
		}
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				src := NodeID((w + i) % 8)
				g.Dijkstra(src, masks[i%len(masks)])
			}
		}(w)
	}
	wg.Wait()

	var buf bytes.Buffer
	if err := pprof.Lookup("mutex").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	prof := buf.String()
	for _, frame := range []string{"spfcache", "SPFCache"} {
		if strings.Contains(prof, frame) {
			t.Errorf("mutex profile records contention in the SPF cache (frame %q):\n%s", frame, prof)
		}
	}
}

// TestSPFCacheParallelReadWrite races readers against writers (misses force
// clone-on-write publishes and wholesale evictions) and cross-checks every
// tree a reader observes against an uncached reference. Run under -race in
// CI, this is the memory-safety gate for the snapshot-publish protocol.
func TestSPFCacheParallelReadWrite(t *testing.T) {
	g := lockFreeTestGraph(t)
	ref := make(map[NodeID]*SPTree)
	for src := NodeID(0); src < 16; src++ {
		ref[src] = g.Dijkstra(src, nil) // uncached reference trees
	}
	c := NewSPFCache(g, 4) // tiny shards: force eviction churn mid-race

	const goroutines = 12
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mask := NewMask()
			for i := 0; i < 2000; i++ {
				src := NodeID((w*7 + i) % 16)
				if i%17 == 0 {
					// Unique-ish masked queries keep the writer path busy.
					mask.BlockEdge(NodeID(i%30), NodeID(i%30+1))
					c.Dijkstra(src, mask)
					mask.UnblockEdge(NodeID(i%30), NodeID(i%30+1))
					continue
				}
				got := c.Dijkstra(src, nil)
				want := ref[src]
				for n := range want.Dist {
					if got.Dist[n] != want.Dist[n] {
						t.Errorf("src %d node %d: dist %v != %v", src, n, got.Dist[n], want.Dist[n])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkSPFCacheHitParallel measures the lock-free hit path under
// goroutine pressure (the shape the serving layer and the sharded event-sim
// mode put on the shared cache).
func BenchmarkSPFCacheHitParallel(b *testing.B) {
	g := lockFreeTestGraph(b)
	g.EnableSPFCache()
	for src := NodeID(0); src < 8; src++ {
		g.Dijkstra(src, nil)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		src := NodeID(0)
		for pb.Next() {
			g.Dijkstra(src, nil)
			src = (src + 1) % 8
		}
	})
}
