package graph

import (
	"math/rand"
	"slices"
	"testing"
)

// refMaskModel is a naive map-backed oracle for Mask semantics: it tracks the
// blocked sets directly and recomputes the fingerprint from scratch on every
// query, so any incremental-maintenance or representation bug in Mask shows
// up as a divergence.
type refMaskModel struct {
	nodes map[NodeID]bool
	edges map[EdgeID]bool
}

func newRefMaskModel() *refMaskModel {
	return &refMaskModel{nodes: map[NodeID]bool{}, edges: map[EdgeID]bool{}}
}

func (r *refMaskModel) fingerprint() uint64 {
	if len(r.nodes)+len(r.edges) == 0 {
		return 0
	}
	var fp uint64
	for n := range r.nodes {
		fp ^= nodeMix(n)
	}
	for e := range r.edges {
		fp ^= edgeMix(e)
	}
	return mix64(fp ^ uint64(len(r.nodes)+len(r.edges))<<1 ^ 0x9E3779B97F4A7C15)
}

func (r *refMaskModel) clone() *refMaskModel {
	c := newRefMaskModel()
	for n := range r.nodes {
		c.nodes[n] = true
	}
	for e := range r.edges {
		c.edges[e] = true
	}
	return c
}

// diff returns the sorted (added, removed) element diff of r vs other.
func (r *refMaskModel) diff(other *refMaskModel) (added, removed []MaskElem) {
	for n := range r.nodes {
		if !other.nodes[n] {
			added = append(added, MaskElem{Node: n})
		}
	}
	for e := range r.edges {
		if !other.edges[e] {
			added = append(added, MaskElem{Edge: e, IsEdge: true})
		}
	}
	for n := range other.nodes {
		if !r.nodes[n] {
			removed = append(removed, MaskElem{Node: n})
		}
	}
	for e := range other.edges {
		if !r.edges[e] {
			removed = append(removed, MaskElem{Edge: e, IsEdge: true})
		}
	}
	slices.SortFunc(added, maskElemCompare)
	slices.SortFunc(removed, maskElemCompare)
	return added, removed
}

// maskUnderTest pairs a Mask (in whichever representation its op history has
// driven it to) with the oracle model.
type maskUnderTest struct {
	m   *Mask
	ref *refMaskModel
}

// checkAgainstRef compares every observable of ut.m against the oracle over
// the full node/edge universe.
func (ut *maskUnderTest) checkAgainstRef(t *testing.T, universe int, label string) {
	t.Helper()
	if got, want := ut.m.Fingerprint(), ut.ref.fingerprint(); got != want {
		t.Fatalf("%s: Fingerprint=%#x want %#x (repr bits=%v)", label, got, want, ut.m.bits != nil)
	}
	if got, want := ut.m.IsEmpty(), len(ut.ref.nodes)+len(ut.ref.edges) == 0; got != want {
		t.Fatalf("%s: IsEmpty=%v want %v", label, got, want)
	}
	if ut.m.nnodes != len(ut.ref.nodes) {
		t.Fatalf("%s: nnodes=%d want %d", label, ut.m.nnodes, len(ut.ref.nodes))
	}
	// Probe slightly outside the universe too (and a negative ID) to catch
	// out-of-range bitset reads.
	for n := NodeID(-1); n < NodeID(universe+65); n++ {
		if got, want := ut.m.NodeBlocked(n), ut.ref.nodes[n]; got != want {
			t.Fatalf("%s: NodeBlocked(%d)=%v want %v (repr bits=%v)", label, n, got, want, ut.m.bits != nil)
		}
	}
	for u := NodeID(0); u < NodeID(universe); u += 3 {
		for v := u + 1; v < NodeID(universe); v += 7 {
			e := MakeEdgeID(u, v)
			want := ut.ref.edges[e] || ut.ref.nodes[u] || ut.ref.nodes[v]
			if got := ut.m.EdgeBlocked(u, v); got != want {
				t.Fatalf("%s: EdgeBlocked(%d,%d)=%v want %v", label, u, v, got, want)
			}
		}
	}
	var blocked []NodeID
	ut.m.eachBlockedNode(func(n NodeID) { blocked = append(blocked, n) })
	if len(blocked) != len(ut.ref.nodes) {
		t.Fatalf("%s: eachBlockedNode visited %d nodes, want %d", label, len(blocked), len(ut.ref.nodes))
	}
	for _, n := range blocked {
		if !ut.ref.nodes[n] {
			t.Fatalf("%s: eachBlockedNode visited unblocked node %d", label, n)
		}
	}
}

// TestMaskBitsetEquivalence drives randomized op sequences against three Mask
// instances sharing one oracle: one born map-backed (promoting mid-sequence
// once the threshold is crossed), one born bitset-backed via
// NewMaskWithCapacity, and one born bitset-backed with a deliberately tiny
// capacity (so the grow-on-demand path is exercised). All observables —
// Block/Unblock, Clone, Union, Fingerprint, DiffElements — must be
// representation-independent.
func TestMaskBitsetEquivalence(t *testing.T) {
	const universe = 200 // > 3×maskPromoteThreshold so promotion is guaranteed reachable
	rounds := 40
	ops := 400
	if testing.Short() {
		rounds, ops = 8, 200
	}
	for round := 0; round < rounds; round++ {
		r := rand.New(rand.NewSource(int64(7919*round + 13)))
		variants := []*maskUnderTest{
			{m: NewMask(), ref: newRefMaskModel()},
			{m: NewMaskWithCapacity(universe), ref: newRefMaskModel()},
			{m: NewMaskWithCapacity(1), ref: newRefMaskModel()},
		}
		if variants[0].m.bits != nil || variants[1].m.bits == nil || variants[2].m.bits == nil {
			t.Fatal("constructor representations not as expected")
		}
		// A second op stream builds the "other" mask for Union/Diff probes.
		other := &maskUnderTest{m: NewMask(), ref: newRefMaskModel()}
		if r.Intn(2) == 0 {
			other.m = NewMaskWithCapacity(universe / 2)
		}

		for i := 0; i < ops; i++ {
			n := NodeID(r.Intn(universe))
			v := NodeID(r.Intn(universe))
			target := variants
			if r.Intn(4) == 0 {
				target = []*maskUnderTest{other}
			}
			switch op := r.Intn(10); {
			case op < 4: // block node (weighted: grow the sets)
				for _, ut := range target {
					ut.m.BlockNode(n)
					ut.ref.nodes[n] = true
				}
			case op < 6:
				for _, ut := range target {
					ut.m.UnblockNode(n)
					delete(ut.ref.nodes, n)
				}
			case op < 8:
				if n != v {
					for _, ut := range target {
						ut.m.BlockEdge(n, v)
						ut.ref.edges[MakeEdgeID(n, v)] = true
					}
				}
			case op < 9:
				if n != v {
					for _, ut := range target {
						ut.m.UnblockEdge(n, v)
						delete(ut.ref.edges, MakeEdgeID(n, v))
					}
				}
			default: // negative-ID block must be a no-op
				for _, ut := range target {
					ut.m.BlockNode(NodeID(-1 - r.Intn(3)))
				}
			}

			if i%37 == 0 || i == ops-1 {
				for vi, ut := range variants {
					ut.checkAgainstRef(t, universe, "variant")
					other.checkAgainstRef(t, universe, "other")

					// Clone: deep, representation-preserving, independent.
					cl := &maskUnderTest{m: ut.m.Clone(), ref: ut.ref.clone()}
					if (cl.m.bits != nil) != (ut.m.bits != nil) {
						t.Fatalf("Clone changed representation")
					}
					cl.m.BlockNode(NodeID(universe + vi)) // mutate the clone only
					cl.ref.nodes[NodeID(universe+vi)] = true
					cl.checkAgainstRef(t, universe+8, "clone+mutate")
					ut.checkAgainstRef(t, universe, "original after clone mutate")

					// Union across representations.
					un := &maskUnderTest{m: ut.m.Union(other.m), ref: ut.ref.clone()}
					for nn := range other.ref.nodes {
						un.ref.nodes[nn] = true
					}
					for ee := range other.ref.edges {
						un.ref.edges[ee] = true
					}
					un.checkAgainstRef(t, universe, "union")

					// DiffElements across representations, both directions.
					wantA, wantR := ut.ref.diff(other.ref)
					gotA, gotR, ok := ut.m.DiffElements(other.m)
					if wantOK := len(wantA)+len(wantR) <= DefaultDiffLimit; ok != wantOK {
						t.Fatalf("DiffElements ok=%v want %v (|added|=%d |removed|=%d)", ok, wantOK, len(wantA), len(wantR))
					} else if ok && (!slices.Equal(gotA, wantA) || !slices.Equal(gotR, wantR)) {
						t.Fatalf("DiffElements mismatch:\n got  %v / %v\n want %v / %v", gotA, gotR, wantA, wantR)
					}
				}
			}
		}
	}
}

// TestMaskCrossRepresentationFingerprint checks that the same blocked set
// fingerprints identically whether reached via map, promoted map, or
// capacity-bound bitset, and that block/unblock round-trips restore the
// empty fingerprint exactly.
func TestMaskCrossRepresentationFingerprint(t *testing.T) {
	const n = 150 // crosses maskPromoteThreshold
	a := NewMask()
	b := NewMaskWithCapacity(n)
	for i := 0; i < n; i++ {
		a.BlockNode(NodeID(i))
		b.BlockNode(NodeID(n - 1 - i)) // reverse order: XOR must not care
	}
	if a.bits == nil {
		t.Fatal("map mask did not promote past threshold")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ across representations: %#x vs %#x", a.Fingerprint(), b.Fingerprint())
	}
	for i := 0; i < n; i++ {
		a.UnblockNode(NodeID(i))
		b.UnblockNode(NodeID(i))
	}
	if a.Fingerprint() != 0 || b.Fingerprint() != 0 || !a.IsEmpty() || !b.IsEmpty() {
		t.Fatalf("unblock round-trip did not restore empty: %#x %#x", a.Fingerprint(), b.Fingerprint())
	}
}

// TestMaskBitsetISPFLineage runs the SPF cache's delta-repair path with
// bitset-backed masks under the crosscheck oracle (the same verification
// SMRP_ISPF_CHECK=1 enables in production): every delta-repaired tree is
// compared bit-for-bit against a from-scratch sweep. This pins the
// lineage-diff path — AppendDiff over mixed/bitset representations feeding
// ispfRepair — to full-recompute ground truth.
func TestMaskBitsetISPFLineage(t *testing.T) {
	prev := ispfCrosscheck
	ispfCrosscheck = true
	defer func() { ispfCrosscheck = prev }()

	g := ispfTestGraph(t)
	c := g.EnableSPFCache()
	defer g.DisableSPFCache()

	r := rand.New(rand.NewSource(99))
	edges := g.Edges()
	// The session mask: bitset-backed from birth, evolving by small deltas so
	// the cache's tryDelta lineage path (prev entry → AppendDiff → repair)
	// fires. The cache clones the mask per entry, so every stored lineage
	// mask is bitset-backed too.
	mask := NewMaskWithCapacity(g.NumNodes())
	src := NodeID(0)
	deltasBefore := c.DeltaRepairs()
	for step := 0; step < 120; step++ {
		switch r.Intn(4) {
		case 0:
			mask.BlockNode(NodeID(r.Intn(g.NumNodes())))
		case 1:
			mask.UnblockNode(NodeID(r.Intn(g.NumNodes())))
		case 2:
			e := edges[r.Intn(len(edges))]
			mask.BlockEdge(e.A, e.B)
		default:
			e := edges[r.Intn(len(edges))]
			mask.UnblockEdge(e.A, e.B)
		}
		if mask.NodeBlocked(src) {
			mask.UnblockNode(src)
		}
		got := c.Dijkstra(src, mask) // panics inside crosscheck on any divergence
		want := g.dijkstra(src, mask)
		if !slices.Equal(got.Parent, want.Parent) || !slices.Equal(got.Dist, want.Dist) {
			t.Fatalf("step %d: cached tree diverges from fresh sweep", step)
		}
	}
	if c.DeltaRepairs() == deltasBefore {
		t.Fatal("delta-repair path never exercised; lineage diff over bitset masks untested")
	}
}
