package graph

import (
	"math/bits"
	"slices"
)

// Mask excludes nodes and/or edges from traversal, expressing component
// failures or deliberate avoidance without mutating the graph. A nil *Mask
// excludes nothing.
//
// The mask maintains its Fingerprint incrementally (XOR is self-inverse and
// commutative), so fingerprint queries on the SPF-cache hot path are O(1)
// regardless of how many elements are blocked.
//
// Node blocks have two interchangeable representations:
//
//   - a map (the historical default), cheap for the tiny masks the paper-scale
//     studies use;
//   - a dense bitset, promoted to automatically once the blocked-node count
//     crosses maskPromoteThreshold, or from birth via NewMaskWithCapacity.
//     On the Dijkstra/sweep/iSPF relaxation loop a bitset probe is a
//     shift+and on a contiguous array instead of a hash lookup — the
//     difference between megascale sweeps being memory-bound on useful data
//     versus on map buckets.
//
// The representation is invisible to callers: Fingerprint, DiffElements,
// Clone, Union and all blocking queries behave identically (property-tested
// by TestMaskBitsetEquivalence), so promoting never changes any study output.
// Node IDs are dense and non-negative by package contract; blocking a
// negative ID is a no-op.
//
// Edge blocks always stay map-backed: the edge universe is quadratic, edge
// blocks are rare (most failure masks block nodes or a handful of links), and
// EdgeBlocked is already off the sweep fast path unless edges are blocked.
type Mask struct {
	// nodes is the map representation of blocked nodes; nil once promoted.
	nodes map[NodeID]bool
	// bits is the dense bitset representation; non-nil exactly when promoted
	// (the two node representations are mutually exclusive).
	bits []uint64
	// nnodes counts blocked nodes regardless of representation.
	nnodes int

	edges map[EdgeID]bool
	// fp is the running XOR of per-element mixes; count the number of
	// blocked elements folded into it.
	fp    uint64
	count int
}

// maskPromoteThreshold is the blocked-node count past which a map-backed mask
// switches to the bitset representation. Paper-scale masks (a failed link or
// node, a blocked subtree of a 100-node graph) stay comfortably below it;
// chaos schedules and megascale subtree blocks cross it and get the dense
// probes.
const maskPromoteThreshold = 64

// NewMask returns an empty, map-backed mask.
func NewMask() *Mask {
	return &Mask{nodes: make(map[NodeID]bool), edges: make(map[EdgeID]bool)}
}

// NewMaskWithCapacity returns an empty mask whose node blocks are bitset-
// backed from birth, sized for node IDs 0..n-1 (the bitset grows if a larger
// ID is blocked later). Use it when the graph size is known at construction —
// sessions over megascale topologies bind their failure masks this way so
// every relaxation-loop probe is dense from the first blocked element.
func NewMaskWithCapacity(n int) *Mask {
	if n < 1 {
		n = 1
	}
	return &Mask{bits: make([]uint64, (n+63)/64), edges: make(map[EdgeID]bool)}
}

// nodeMix is the fingerprint contribution of a blocked node.
func nodeMix(n NodeID) uint64 {
	return mix64(uint64(n) ^ 0xA5A5_0000_0000_0001)
}

// edgeMix is the fingerprint contribution of a blocked edge.
func edgeMix(e EdgeID) uint64 {
	return mix64(uint64(uint32(e.A))<<32 | uint64(uint32(e.B)))
}

// nodeBlocked is the representation dispatch behind every node-block query;
// m must be non-nil. Negative IDs are never blocked (uint conversion turns
// them into out-of-range words).
func (m *Mask) nodeBlocked(n NodeID) bool {
	if m.bits != nil {
		w := uint(n) >> 6
		return w < uint(len(m.bits)) && m.bits[w]>>(uint(n)&63)&1 != 0
	}
	return m.nodes[n]
}

// promote switches a map-backed mask to the bitset representation sized for
// the largest blocked ID (or n-1 if larger). Fingerprint and counts are
// untouched: the blocked set is identical, only its storage changes.
func (m *Mask) promote(n int) {
	maxID := NodeID(n - 1)
	for id := range m.nodes {
		if id > maxID {
			maxID = id
		}
	}
	if maxID < 0 {
		maxID = 0
	}
	bits := make([]uint64, (int(maxID)+64)/64)
	for id := range m.nodes {
		if id >= 0 {
			bits[uint(id)>>6] |= 1 << (uint(id) & 63)
		}
	}
	m.bits = bits
	m.nodes = nil
}

// ensureBits grows the bitset to cover node n (amortized doubling).
func (m *Mask) ensureBits(n NodeID) {
	w := int(uint(n)>>6) + 1
	if w <= len(m.bits) {
		return
	}
	if c := 2 * len(m.bits); w < c {
		w = c
	}
	nb := make([]uint64, w)
	copy(nb, m.bits)
	m.bits = nb
}

// BlockNode marks node n as unusable and returns the mask for chaining.
// Blocking a negative ID is a no-op (node IDs are dense and non-negative).
func (m *Mask) BlockNode(n NodeID) *Mask {
	if n < 0 || m.nodeBlocked(n) {
		return m
	}
	if m.bits != nil {
		m.ensureBits(n)
		m.bits[uint(n)>>6] |= 1 << (uint(n) & 63)
	} else {
		m.nodes[n] = true
		if len(m.nodes) > maskPromoteThreshold {
			m.promote(0)
		}
	}
	m.nnodes++
	m.fp ^= nodeMix(n)
	m.count++
	return m
}

// BlockNodes marks every listed node as unusable and returns the mask for
// chaining — the bulk form of BlockNode used by hot callers (reshaping blocks
// an entire subtree per evaluation).
func (m *Mask) BlockNodes(ids ...NodeID) *Mask {
	for _, n := range ids {
		m.BlockNode(n)
	}
	return m
}

// UnblockNode removes n from the blocked set and returns the mask for
// chaining. Unblocking a node that is not blocked is a no-op. Because the
// fingerprint is an XOR of per-element mixes (self-inverse), unblocking is
// O(1) — which is what lets hot paths reuse one scratch mask with
// block/unblock pairs instead of cloning per probe.
func (m *Mask) UnblockNode(n NodeID) *Mask {
	if !m.nodeBlocked(n) {
		return m
	}
	if m.bits != nil {
		m.bits[uint(n)>>6] &^= 1 << (uint(n) & 63)
	} else {
		delete(m.nodes, n)
	}
	m.nnodes--
	m.fp ^= nodeMix(n)
	m.count--
	return m
}

// BlockEdge marks the undirected edge (u, v) as unusable and returns the mask
// for chaining.
func (m *Mask) BlockEdge(u, v NodeID) *Mask {
	e := MakeEdgeID(u, v)
	if !m.edges[e] {
		m.edges[e] = true
		m.fp ^= edgeMix(e)
		m.count++
	}
	return m
}

// UnblockEdge removes the undirected edge (u, v) from the blocked set and
// returns the mask for chaining; a no-op when the edge is not blocked.
// O(1), like UnblockNode.
func (m *Mask) UnblockEdge(u, v NodeID) *Mask {
	e := MakeEdgeID(u, v)
	if m.edges[e] {
		delete(m.edges, e)
		m.fp ^= edgeMix(e)
		m.count--
	}
	return m
}

// IsEmpty reports whether the mask blocks nothing. A nil mask is empty.
func (m *Mask) IsEmpty() bool { return m == nil || m.count == 0 }

// hasNodeBlocks reports whether any node is blocked (loop-hoisted fast path
// for the sweep engine).
func (m *Mask) hasNodeBlocks() bool { return m != nil && m.nnodes > 0 }

// hasEdgeBlocks reports whether any edge is blocked directly (blocked
// endpoints are covered by hasNodeBlocks).
func (m *Mask) hasEdgeBlocks() bool { return m != nil && len(m.edges) > 0 }

// NodeBlocked reports whether node n is excluded. A nil mask blocks nothing.
func (m *Mask) NodeBlocked(n NodeID) bool {
	return m != nil && m.nodeBlocked(n)
}

// EdgeBlocked reports whether edge (u, v) is excluded, either directly or via
// a blocked endpoint. A nil mask blocks nothing.
func (m *Mask) EdgeBlocked(u, v NodeID) bool {
	if m == nil {
		return false
	}
	return m.edges[MakeEdgeID(u, v)] || m.nodeBlocked(u) || m.nodeBlocked(v)
}

// eachBlockedNode invokes fn for every blocked node. Bitset masks iterate in
// ascending ID order; map masks in map order. Callers must not rely on the
// order (everything order-sensitive sorts afterwards, see AppendDiff).
func (m *Mask) eachBlockedNode(fn func(NodeID)) {
	if m.bits != nil {
		for w, word := range m.bits {
			for word != 0 {
				fn(NodeID(w<<6 + bits.TrailingZeros64(word)))
				word &= word - 1
			}
		}
		return
	}
	for n := range m.nodes {
		fn(n)
	}
}

// Clone returns a deep copy of the mask, preserving its node representation.
// Cloning a nil mask yields an empty map-backed mask. Cloning a bitset mask
// is a single word-array copy — the per-event cost of the SPF cache's
// clone-per-entry masks stays O(N/64) flat at megascale instead of a
// per-element map rebuild.
func (m *Mask) Clone() *Mask {
	if m == nil {
		return NewMask()
	}
	c := &Mask{
		nnodes: m.nnodes,
		edges:  make(map[EdgeID]bool, len(m.edges)),
		fp:     m.fp,
		count:  m.count,
	}
	if m.bits != nil {
		c.bits = make([]uint64, len(m.bits))
		copy(c.bits, m.bits)
	} else {
		c.nodes = make(map[NodeID]bool, len(m.nodes))
		for n, v := range m.nodes {
			if v {
				c.nodes[n] = true
			}
		}
	}
	for e, v := range m.edges {
		if v {
			c.edges[e] = true
		}
	}
	return c
}

// MaskElem is one blocked element of a Mask: a node when IsEdge is false,
// an undirected edge otherwise. It is the unit of Mask set-difference used by
// the incremental-SPF delta path (see DiffElements and internal/graph/ispf.go).
type MaskElem struct {
	Node   NodeID // valid when !IsEdge
	Edge   EdgeID // valid when IsEdge
	IsEdge bool
}

// maskElemCompare orders MaskElems deterministically: nodes (by ID) before
// edges (by canonical endpoint pair). DiffElements sorts its output with it so
// the diff is independent of map iteration order.
func maskElemCompare(a, b MaskElem) int {
	if a.IsEdge != b.IsEdge {
		if !a.IsEdge {
			return -1
		}
		return 1
	}
	if !a.IsEdge {
		return int(a.Node - b.Node)
	}
	return edgeIDCompare(a.Edge, b.Edge)
}

// DefaultDiffLimit bounds DiffElements: diffs larger than this are reported as
// "not small" (ok=false). The incremental-SPF repair is only a win when the
// mask changed by a handful of elements; past that a full sweep is both
// simpler and comparably fast, so the cache falls back to it.
const DefaultDiffLimit = 32

// DiffElements computes the bounded set difference between m and other:
// added lists elements blocked by m but not by other, removed lists elements
// blocked by other but not by m. Both slices are sorted deterministically
// (nodes by ID, then edges by endpoint pair). When the total diff exceeds
// DefaultDiffLimit the function gives up early and returns ok=false with nil
// slices — the fast path that lets the SPF cache probe "is this mask a small
// delta of one I already solved?" without unbounded work. A nil mask is
// treated as empty.
func (m *Mask) DiffElements(other *Mask) (added, removed []MaskElem, ok bool) {
	return m.AppendDiff(nil, nil, other, DefaultDiffLimit)
}

// appendNodeDiff appends to out (under the shared budget) every node blocked
// by m but not by other; it reports the remaining budget and false on budget
// exhaustion. Works across any representation pairing: bitset-vs-bitset
// diffs compare whole words and only decode IDs for set difference bits.
func (m *Mask) appendNodeDiff(out []MaskElem, other *Mask, budget int) ([]MaskElem, int, bool) {
	if m.bits != nil {
		for w, word := range m.bits {
			if other != nil && other.bits != nil && w < len(other.bits) {
				word &^= other.bits[w] // word-level set difference
			}
			for word != 0 {
				n := NodeID(w<<6 + bits.TrailingZeros64(word))
				word &= word - 1
				if other.NodeBlocked(n) { // other may be map-backed
					continue
				}
				if budget--; budget < 0 {
					return out, budget, false
				}
				out = append(out, MaskElem{Node: n})
			}
		}
		return out, budget, true
	}
	for n := range m.nodes {
		if !other.NodeBlocked(n) {
			if budget--; budget < 0 {
				return out, budget, false
			}
			out = append(out, MaskElem{Node: n})
		}
	}
	return out, budget, true
}

// AppendDiff is the allocation-aware core of DiffElements: it appends the
// diff to the provided slices (reusing their capacity) under an explicit
// element limit, returning the grown slices and whether the diff stayed
// within the limit. On ok=false the returned slices are the inputs truncated
// to their original contents' prefix and must not be interpreted as a diff.
func (m *Mask) AppendDiff(added, removed []MaskElem, other *Mask, limit int) ([]MaskElem, []MaskElem, bool) {
	a0, r0 := len(added), len(removed)
	mc, oc := 0, 0
	if m != nil {
		mc = m.count
	}
	if other != nil {
		oc = other.count
	}
	// Quick reject: the diff has at least |count difference| elements.
	if d := mc - oc; d > limit || -d > limit {
		return added[:a0], removed[:r0], false
	}
	budget := limit
	var ok bool
	if m != nil {
		if added, budget, ok = m.appendNodeDiff(added, other, budget); !ok {
			return added[:a0], removed[:r0], false
		}
		for e := range m.edges {
			if other == nil || !other.edges[e] {
				if budget--; budget < 0 {
					return added[:a0], removed[:r0], false
				}
				added = append(added, MaskElem{Edge: e, IsEdge: true})
			}
		}
	}
	if other != nil {
		if removed, budget, ok = other.appendNodeDiff(removed, m, budget); !ok {
			return added[:a0], removed[:r0], false
		}
		for e := range other.edges {
			if m == nil || !m.edges[e] {
				if budget--; budget < 0 {
					return added[:a0], removed[:r0], false
				}
				removed = append(removed, MaskElem{Edge: e, IsEdge: true})
			}
		}
	}
	// Map iteration order is randomized; sort so the diff (and everything
	// derived from it, like delta-repair settle counters) is deterministic.
	// (Bitset node diffs are already ascending, but the sort is cheap on
	// bounded diffs and keeps one code path.)
	slices.SortFunc(added[a0:], maskElemCompare)
	slices.SortFunc(removed[r0:], maskElemCompare)
	return added, removed, true
}

// mix64 is the splitmix64 finalizer: a cheap, high-quality 64-bit bit mixer
// used for mask fingerprints and cache sharding.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Fingerprint returns a deterministic 64-bit digest of the blocked set.
// Blocked elements are combined commutatively (XOR of per-element mixes,
// maintained incrementally as elements are blocked), so the fingerprint is
// independent of insertion order — and of the node-block representation —
// and costs O(1) to query. A nil or empty mask fingerprints to 0. Masks with
// equal fingerprints are treated as equal by the SPF cache; the per-element
// mixing keeps accidental collisions vanishingly unlikely at cache scale.
func (m *Mask) Fingerprint() uint64 {
	if m == nil || m.count == 0 {
		return 0
	}
	// Fold the element count in so masks whose XORs cancel still differ.
	return mix64(m.fp ^ uint64(m.count)<<1 ^ 0x9E3779B97F4A7C15)
}

// Union returns a new mask blocking everything blocked by m or other. The
// result keeps m's node representation (promoting on the way if the combined
// blocked-node count crosses the threshold).
func (m *Mask) Union(other *Mask) *Mask {
	c := m.Clone()
	if other == nil {
		return c
	}
	other.eachBlockedNode(func(n NodeID) { c.BlockNode(n) })
	for e, v := range other.edges {
		if v && !c.edges[e] {
			c.edges[e] = true
			c.fp ^= edgeMix(e)
			c.count++
		}
	}
	return c
}
