// Package graph provides the weighted undirected graph substrate used by the
// SMRP reproduction: adjacency storage, shortest paths (Dijkstra), k-shortest
// paths (Yen), connectivity queries, and path utilities.
//
// Graphs are node-indexed with dense integer identifiers, which keeps the
// simulator and the routing layer allocation-light. All algorithms accept an
// optional Mask so callers can express failures ("the network minus this
// link/node") without copying the graph.
package graph

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync/atomic"
)

// NodeID identifies a node in a Graph. IDs are dense: 0..NumNodes()-1.
type NodeID int

// Invalid is the sentinel NodeID used where "no node" must be expressed
// (e.g. Dijkstra parents of unreachable nodes).
const Invalid NodeID = -1

// EdgeID identifies an undirected edge by its canonical endpoint pair.
type EdgeID struct {
	A, B NodeID // invariant: A < B
}

// MakeEdgeID builds the canonical EdgeID for the endpoint pair (u, v).
func MakeEdgeID(u, v NodeID) EdgeID {
	if u > v {
		u, v = v, u
	}
	return EdgeID{A: u, B: v}
}

// Other returns the endpoint of e opposite to n, and reports whether n is an
// endpoint of e at all.
func (e EdgeID) Other(n NodeID) (NodeID, bool) {
	switch n {
	case e.A:
		return e.B, true
	case e.B:
		return e.A, true
	default:
		return Invalid, false
	}
}

// String implements fmt.Stringer.
func (e EdgeID) String() string {
	return fmt.Sprintf("(%d-%d)", e.A, e.B)
}

// Arc is one directed half of an undirected edge as stored in adjacency lists.
type Arc struct {
	To     NodeID
	Weight float64
}

// Point is a 2-D node position (used by Waxman-style generators; weights are
// typically Euclidean distances between endpoint positions).
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Graph is a weighted undirected graph with dense node IDs.
//
// The zero value is an empty graph; use New or AddNode/AddEdge to populate
// it. Graph methods are not safe for concurrent mutation; concurrent
// read-only use is safe.
type Graph struct {
	adj     [][]Arc
	pos     []Point
	weights map[EdgeID]float64
	// frozen marks the graph immutable (see Freeze). Once set, edge lookups
	// are served from the sorted flat pair below and the weights map is
	// dropped from steady state entirely.
	frozen  bool
	edgeIDs []EdgeID  // canonical (A,B)-sorted edge list; frozen graphs only
	edgeW   []float64 // weights parallel to edgeIDs
	// version counts structural mutations (nodes, edges, positions). The
	// SPF cache uses it to invalidate memoized shortest-path trees when the
	// topology changes. Mutation is single-threaded by contract (see
	// EnableSPFCache), so no atomicity is needed.
	version uint64
	// spf, when non-nil, memoizes Dijkstra results keyed by (source,
	// mask fingerprint). See EnableSPFCache.
	spf *SPFCache
	// csr lazily caches the flat compressed-sparse-row adjacency view the
	// sweep engine relaxes over; it is rebuilt (via the version counter)
	// whenever the topology changes. See csrNow.
	csr atomic.Pointer[csrView]
}

// ErrUnknownNode is returned when an operation names a node the graph does
// not contain. Higher layers (core, spfbase, hierarchy) wrap it, so
// errors.Is(err, graph.ErrUnknownNode) matches across the whole stack.
var ErrUnknownNode = errors.New("graph: unknown node")

// ErrFrozen is returned (or carried by the panic message of error-less
// mutators) when a mutation reaches a graph after Freeze.
var ErrFrozen = errors.New("graph: graph is frozen")

// New returns a graph with n nodes (IDs 0..n-1) and no edges. Node positions
// default to the origin.
func New(n int) *Graph {
	return &Graph{
		adj:     make([][]Arc, n),
		pos:     make([]Point, n),
		weights: make(map[EdgeID]float64, n*2),
	}
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges in the graph.
func (g *Graph) NumEdges() int {
	if g.frozen {
		return len(g.edgeIDs)
	}
	return len(g.weights)
}

// Freeze ends the graph's build phase: the edge set is compacted into a
// canonically sorted flat []EdgeID/[]float64 pair (binary-searched by
// HasEdge/EdgeWeight), the per-node adjacency slices are re-packed onto one
// flat backing array, the CSR sweep view is materialized eagerly, and the
// weights map is dropped from steady state entirely — on a megascale
// topology that map is the single largest resident structure, and it buys
// nothing once construction ends. A frozen graph is immutable: AddEdge
// returns ErrFrozen, and the error-less mutators (AddNode, SetPos) panic.
// Freeze is idempotent and returns g for chaining.
//
// All read APIs answer bit-identically to the map-backed build phase (see
// TestFrozenGraphEquivalence); Clone of a frozen graph shares the immutable
// storage instead of deep-copying it.
func (g *Graph) Freeze() *Graph {
	if g.frozen {
		return g
	}
	g.edgeIDs = make([]EdgeID, 0, len(g.weights))
	for id := range g.weights {
		g.edgeIDs = append(g.edgeIDs, id)
	}
	slices.SortFunc(g.edgeIDs, edgeIDCompare)
	g.edgeW = make([]float64, len(g.edgeIDs))
	for i, id := range g.edgeIDs {
		g.edgeW[i] = g.weights[id]
	}
	// Re-pack adjacency onto one flat backing (same layout Clone builds), so
	// the per-node append slack from the build phase is released.
	total := 0
	for _, arcs := range g.adj {
		total += len(arcs)
	}
	backing := make([]Arc, 0, total)
	packed := make([][]Arc, len(g.adj))
	for i, arcs := range g.adj {
		start := len(backing)
		backing = append(backing, arcs...)
		packed[i] = backing[start:len(backing):len(backing)]
	}
	g.adj = packed
	g.weights = nil
	g.frozen = true
	g.csrNow() // materialize the serving view while the build is still warm
	return g
}

// Frozen reports whether Freeze has ended the graph's build phase.
func (g *Graph) Frozen() bool { return g.frozen }

// edgeWeightByID returns the weight of the canonical edge id and whether it
// exists, from whichever representation is live (sorted pair when frozen,
// map during the build phase).
func (g *Graph) edgeWeightByID(id EdgeID) (float64, bool) {
	if g.frozen {
		if i, ok := slices.BinarySearchFunc(g.edgeIDs, id, edgeIDCompare); ok {
			return g.edgeW[i], true
		}
		return 0, false
	}
	w, ok := g.weights[id]
	return w, ok
}

// AddNode appends a node at position p and returns its ID. It panics on a
// frozen graph (construction has ended).
func (g *Graph) AddNode(p Point) NodeID {
	if g.frozen {
		panic(ErrFrozen)
	}
	g.adj = append(g.adj, nil)
	g.pos = append(g.pos, p)
	if g.weights == nil {
		g.weights = make(map[EdgeID]float64)
	}
	g.version++
	return NodeID(len(g.adj) - 1)
}

// SetPos sets the position of node n. It panics on a frozen graph.
func (g *Graph) SetPos(n NodeID, p Point) {
	if g.frozen {
		panic(ErrFrozen)
	}
	g.pos[n] = p
	g.version++
}

// Version returns the structural-mutation counter. It increases whenever a
// node, edge, or position changes, and is what invalidates memoized SPF
// state (see SPFCache).
func (g *Graph) Version() uint64 { return g.version }

// Pos returns the position of node n.
func (g *Graph) Pos(n NodeID) Point { return g.pos[n] }

// valid reports whether n is a node of g.
func (g *Graph) valid(n NodeID) bool { return n >= 0 && int(n) < len(g.adj) }

// AddEdge inserts the undirected edge (u, v) with weight w. It returns an
// error if either endpoint is unknown, the endpoints coincide, the weight is
// not a positive finite number, or the edge already exists.
func (g *Graph) AddEdge(u, v NodeID, w float64) error {
	if g.frozen {
		return fmt.Errorf("add edge %d-%d: %w", u, v, ErrFrozen)
	}
	if !g.valid(u) || !g.valid(v) {
		return fmt.Errorf("add edge %d-%d: %w", u, v, ErrUnknownNode)
	}
	if u == v {
		return fmt.Errorf("add edge: self-loop at node %d", u)
	}
	if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
		return fmt.Errorf("add edge %d-%d: weight %v must be positive and finite", u, v, w)
	}
	id := MakeEdgeID(u, v)
	if _, ok := g.weights[id]; ok {
		return fmt.Errorf("add edge %d-%d: already present", u, v)
	}
	if g.weights == nil {
		g.weights = make(map[EdgeID]float64)
	}
	g.weights[id] = w
	g.adj[u] = append(g.adj[u], Arc{To: v, Weight: w})
	g.adj[v] = append(g.adj[v], Arc{To: u, Weight: w})
	g.version++
	return nil
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.edgeWeightByID(MakeEdgeID(u, v))
	return ok
}

// EdgeWeight returns the weight of edge (u, v) and whether it exists.
func (g *Graph) EdgeWeight(u, v NodeID) (float64, bool) {
	return g.edgeWeightByID(MakeEdgeID(u, v))
}

// Neighbors returns the adjacency list of n. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(n NodeID) []Arc { return g.adj[n] }

// Degree returns the number of edges incident to n.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// AvgDegree returns the average node degree (2·|E| / |V|), or 0 for an empty
// graph.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(len(g.adj))
}

// Edges returns all undirected edges sorted canonically (deterministic order
// regardless of insertion sequence). On a frozen graph this is a copy of the
// resident sorted edge list.
func (g *Graph) Edges() []EdgeID {
	if g.frozen {
		return slices.Clone(g.edgeIDs)
	}
	out := make([]EdgeID, 0, len(g.weights))
	for id := range g.weights {
		out = append(out, id)
	}
	slices.SortFunc(out, edgeIDCompare)
	return out
}

// edgeIDCompare orders EdgeIDs by (A, B); shared by the package's sorted
// edge listings.
func edgeIDCompare(a, b EdgeID) int {
	if a.A != b.A {
		return int(a.A - b.A)
	}
	return int(a.B - b.B)
}

// Clone returns a deep copy of the graph. All per-node adjacency slices of
// the clone share one flat backing array (2·|E| arcs total), so cloning a
// 10⁵-node graph costs three allocations plus the weight map — not one make
// per node. The clone's slices are full (len == cap per node), so appends on
// the clone reallocate instead of clobbering a neighbor's arcs.
//
// Cloning a frozen graph is O(1): the clone is frozen too and shares the
// immutable CSR adjacency, positions, and sorted edge arrays — no per-clone
// copy of megascale state. (The SPF cache, as always, is not cloned.)
func (g *Graph) Clone() *Graph {
	if g.frozen {
		c := &Graph{
			adj:     g.adj,
			pos:     g.pos,
			frozen:  true,
			edgeIDs: g.edgeIDs,
			edgeW:   g.edgeW,
			version: g.version,
		}
		if v := g.csr.Load(); v != nil {
			c.csr.Store(v)
		}
		return c
	}
	c := &Graph{
		adj:     make([][]Arc, len(g.adj)),
		pos:     make([]Point, len(g.pos)),
		weights: make(map[EdgeID]float64, len(g.weights)),
	}
	copy(c.pos, g.pos)
	total := 0
	for _, arcs := range g.adj {
		total += len(arcs)
	}
	backing := make([]Arc, 0, total)
	for i, arcs := range g.adj {
		start := len(backing)
		backing = append(backing, arcs...)
		c.adj[i] = backing[start:len(backing):len(backing)]
	}
	for id, w := range g.weights {
		c.weights[id] = w
	}
	return c
}

// Mask (node/edge exclusion sets, fingerprints, bounded diffs) lives in
// mask.go.
