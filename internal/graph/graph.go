// Package graph provides the weighted undirected graph substrate used by the
// SMRP reproduction: adjacency storage, shortest paths (Dijkstra), k-shortest
// paths (Yen), connectivity queries, and path utilities.
//
// Graphs are node-indexed with dense integer identifiers, which keeps the
// simulator and the routing layer allocation-light. All algorithms accept an
// optional Mask so callers can express failures ("the network minus this
// link/node") without copying the graph.
package graph

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync/atomic"
)

// NodeID identifies a node in a Graph. IDs are dense: 0..NumNodes()-1.
type NodeID int

// Invalid is the sentinel NodeID used where "no node" must be expressed
// (e.g. Dijkstra parents of unreachable nodes).
const Invalid NodeID = -1

// EdgeID identifies an undirected edge by its canonical endpoint pair.
type EdgeID struct {
	A, B NodeID // invariant: A < B
}

// MakeEdgeID builds the canonical EdgeID for the endpoint pair (u, v).
func MakeEdgeID(u, v NodeID) EdgeID {
	if u > v {
		u, v = v, u
	}
	return EdgeID{A: u, B: v}
}

// Other returns the endpoint of e opposite to n, and reports whether n is an
// endpoint of e at all.
func (e EdgeID) Other(n NodeID) (NodeID, bool) {
	switch n {
	case e.A:
		return e.B, true
	case e.B:
		return e.A, true
	default:
		return Invalid, false
	}
}

// String implements fmt.Stringer.
func (e EdgeID) String() string {
	return fmt.Sprintf("(%d-%d)", e.A, e.B)
}

// Arc is one directed half of an undirected edge as stored in adjacency lists.
type Arc struct {
	To     NodeID
	Weight float64
}

// Point is a 2-D node position (used by Waxman-style generators; weights are
// typically Euclidean distances between endpoint positions).
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Graph is a weighted undirected graph with dense node IDs.
//
// The zero value is an empty graph; use New or AddNode/AddEdge to populate
// it. Graph methods are not safe for concurrent mutation; concurrent
// read-only use is safe.
type Graph struct {
	adj     [][]Arc
	pos     []Point
	weights map[EdgeID]float64
	// version counts structural mutations (nodes, edges, positions). The
	// SPF cache uses it to invalidate memoized shortest-path trees when the
	// topology changes. Mutation is single-threaded by contract (see
	// EnableSPFCache), so no atomicity is needed.
	version uint64
	// spf, when non-nil, memoizes Dijkstra results keyed by (source,
	// mask fingerprint). See EnableSPFCache.
	spf *SPFCache
	// csr lazily caches the flat compressed-sparse-row adjacency view the
	// sweep engine relaxes over; it is rebuilt (via the version counter)
	// whenever the topology changes. See csrNow.
	csr atomic.Pointer[csrView]
}

// ErrUnknownNode is returned when an operation names a node the graph does
// not contain. Higher layers (core, spfbase, hierarchy) wrap it, so
// errors.Is(err, graph.ErrUnknownNode) matches across the whole stack.
var ErrUnknownNode = errors.New("graph: unknown node")

// New returns a graph with n nodes (IDs 0..n-1) and no edges. Node positions
// default to the origin.
func New(n int) *Graph {
	return &Graph{
		adj:     make([][]Arc, n),
		pos:     make([]Point, n),
		weights: make(map[EdgeID]float64, n*2),
	}
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges in the graph.
func (g *Graph) NumEdges() int { return len(g.weights) }

// AddNode appends a node at position p and returns its ID.
func (g *Graph) AddNode(p Point) NodeID {
	g.adj = append(g.adj, nil)
	g.pos = append(g.pos, p)
	if g.weights == nil {
		g.weights = make(map[EdgeID]float64)
	}
	g.version++
	return NodeID(len(g.adj) - 1)
}

// SetPos sets the position of node n.
func (g *Graph) SetPos(n NodeID, p Point) {
	g.pos[n] = p
	g.version++
}

// Version returns the structural-mutation counter. It increases whenever a
// node, edge, or position changes, and is what invalidates memoized SPF
// state (see SPFCache).
func (g *Graph) Version() uint64 { return g.version }

// Pos returns the position of node n.
func (g *Graph) Pos(n NodeID) Point { return g.pos[n] }

// valid reports whether n is a node of g.
func (g *Graph) valid(n NodeID) bool { return n >= 0 && int(n) < len(g.adj) }

// AddEdge inserts the undirected edge (u, v) with weight w. It returns an
// error if either endpoint is unknown, the endpoints coincide, the weight is
// not a positive finite number, or the edge already exists.
func (g *Graph) AddEdge(u, v NodeID, w float64) error {
	if !g.valid(u) || !g.valid(v) {
		return fmt.Errorf("add edge %d-%d: %w", u, v, ErrUnknownNode)
	}
	if u == v {
		return fmt.Errorf("add edge: self-loop at node %d", u)
	}
	if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
		return fmt.Errorf("add edge %d-%d: weight %v must be positive and finite", u, v, w)
	}
	id := MakeEdgeID(u, v)
	if _, ok := g.weights[id]; ok {
		return fmt.Errorf("add edge %d-%d: already present", u, v)
	}
	if g.weights == nil {
		g.weights = make(map[EdgeID]float64)
	}
	g.weights[id] = w
	g.adj[u] = append(g.adj[u], Arc{To: v, Weight: w})
	g.adj[v] = append(g.adj[v], Arc{To: u, Weight: w})
	g.version++
	return nil
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.weights[MakeEdgeID(u, v)]
	return ok
}

// EdgeWeight returns the weight of edge (u, v) and whether it exists.
func (g *Graph) EdgeWeight(u, v NodeID) (float64, bool) {
	w, ok := g.weights[MakeEdgeID(u, v)]
	return w, ok
}

// Neighbors returns the adjacency list of n. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(n NodeID) []Arc { return g.adj[n] }

// Degree returns the number of edges incident to n.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// AvgDegree returns the average node degree (2·|E| / |V|), or 0 for an empty
// graph.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(len(g.weights)) / float64(len(g.adj))
}

// Edges returns all undirected edges sorted canonically (deterministic order
// regardless of insertion sequence).
func (g *Graph) Edges() []EdgeID {
	out := make([]EdgeID, 0, len(g.weights))
	for id := range g.weights {
		out = append(out, id)
	}
	slices.SortFunc(out, edgeIDCompare)
	return out
}

// edgeIDCompare orders EdgeIDs by (A, B); shared by the package's sorted
// edge listings.
func edgeIDCompare(a, b EdgeID) int {
	if a.A != b.A {
		return int(a.A - b.A)
	}
	return int(a.B - b.B)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		adj:     make([][]Arc, len(g.adj)),
		pos:     make([]Point, len(g.pos)),
		weights: make(map[EdgeID]float64, len(g.weights)),
	}
	copy(c.pos, g.pos)
	for i, arcs := range g.adj {
		c.adj[i] = make([]Arc, len(arcs))
		copy(c.adj[i], arcs)
	}
	for id, w := range g.weights {
		c.weights[id] = w
	}
	return c
}

// Mask excludes nodes and/or edges from traversal, expressing component
// failures or deliberate avoidance without mutating the graph. A nil *Mask
// excludes nothing.
//
// The mask maintains its Fingerprint incrementally (XOR is self-inverse and
// commutative), so fingerprint queries on the SPF-cache hot path are O(1)
// regardless of how many elements are blocked.
type Mask struct {
	nodes map[NodeID]bool
	edges map[EdgeID]bool
	// fp is the running XOR of per-element mixes; count the number of
	// blocked elements folded into it.
	fp    uint64
	count int
}

// NewMask returns an empty mask.
func NewMask() *Mask {
	return &Mask{nodes: make(map[NodeID]bool), edges: make(map[EdgeID]bool)}
}

// nodeMix is the fingerprint contribution of a blocked node.
func nodeMix(n NodeID) uint64 {
	return mix64(uint64(n) ^ 0xA5A5_0000_0000_0001)
}

// edgeMix is the fingerprint contribution of a blocked edge.
func edgeMix(e EdgeID) uint64 {
	return mix64(uint64(uint32(e.A))<<32 | uint64(uint32(e.B)))
}

// BlockNode marks node n as unusable and returns the mask for chaining.
func (m *Mask) BlockNode(n NodeID) *Mask {
	if !m.nodes[n] {
		m.nodes[n] = true
		m.fp ^= nodeMix(n)
		m.count++
	}
	return m
}

// BlockNodes marks every listed node as unusable and returns the mask for
// chaining — the bulk form of BlockNode used by hot callers (reshaping blocks
// an entire subtree per evaluation).
func (m *Mask) BlockNodes(ids ...NodeID) *Mask {
	for _, n := range ids {
		m.BlockNode(n)
	}
	return m
}

// UnblockNode removes n from the blocked set and returns the mask for
// chaining. Unblocking a node that is not blocked is a no-op. Because the
// fingerprint is an XOR of per-element mixes (self-inverse), unblocking is
// O(1) — which is what lets hot paths reuse one scratch mask with
// block/unblock pairs instead of cloning per probe.
func (m *Mask) UnblockNode(n NodeID) *Mask {
	if m.nodes[n] {
		delete(m.nodes, n)
		m.fp ^= nodeMix(n)
		m.count--
	}
	return m
}

// BlockEdge marks the undirected edge (u, v) as unusable and returns the mask
// for chaining.
func (m *Mask) BlockEdge(u, v NodeID) *Mask {
	e := MakeEdgeID(u, v)
	if !m.edges[e] {
		m.edges[e] = true
		m.fp ^= edgeMix(e)
		m.count++
	}
	return m
}

// UnblockEdge removes the undirected edge (u, v) from the blocked set and
// returns the mask for chaining; a no-op when the edge is not blocked.
// O(1), like UnblockNode.
func (m *Mask) UnblockEdge(u, v NodeID) *Mask {
	e := MakeEdgeID(u, v)
	if m.edges[e] {
		delete(m.edges, e)
		m.fp ^= edgeMix(e)
		m.count--
	}
	return m
}

// IsEmpty reports whether the mask blocks nothing. A nil mask is empty.
func (m *Mask) IsEmpty() bool { return m == nil || m.count == 0 }

// hasNodeBlocks reports whether any node is blocked (loop-hoisted fast path
// for the sweep engine).
func (m *Mask) hasNodeBlocks() bool { return m != nil && len(m.nodes) > 0 }

// hasEdgeBlocks reports whether any edge is blocked directly (blocked
// endpoints are covered by hasNodeBlocks).
func (m *Mask) hasEdgeBlocks() bool { return m != nil && len(m.edges) > 0 }

// NodeBlocked reports whether node n is excluded. A nil mask blocks nothing.
func (m *Mask) NodeBlocked(n NodeID) bool {
	return m != nil && m.nodes[n]
}

// EdgeBlocked reports whether edge (u, v) is excluded, either directly or via
// a blocked endpoint. A nil mask blocks nothing.
func (m *Mask) EdgeBlocked(u, v NodeID) bool {
	if m == nil {
		return false
	}
	return m.edges[MakeEdgeID(u, v)] || m.nodes[u] || m.nodes[v]
}

// Clone returns a deep copy of the mask. Cloning a nil mask yields an empty
// mask.
func (m *Mask) Clone() *Mask {
	c := NewMask()
	if m == nil {
		return c
	}
	for n, v := range m.nodes {
		if v {
			c.nodes[n] = true
		}
	}
	for e, v := range m.edges {
		if v {
			c.edges[e] = true
		}
	}
	c.fp = m.fp
	c.count = m.count
	return c
}

// MaskElem is one blocked element of a Mask: a node when IsEdge is false,
// an undirected edge otherwise. It is the unit of Mask set-difference used by
// the incremental-SPF delta path (see DiffElements and internal/graph/ispf.go).
type MaskElem struct {
	Node   NodeID // valid when !IsEdge
	Edge   EdgeID // valid when IsEdge
	IsEdge bool
}

// maskElemCompare orders MaskElems deterministically: nodes (by ID) before
// edges (by canonical endpoint pair). DiffElements sorts its output with it so
// the diff is independent of map iteration order.
func maskElemCompare(a, b MaskElem) int {
	if a.IsEdge != b.IsEdge {
		if !a.IsEdge {
			return -1
		}
		return 1
	}
	if !a.IsEdge {
		return int(a.Node - b.Node)
	}
	return edgeIDCompare(a.Edge, b.Edge)
}

// DefaultDiffLimit bounds DiffElements: diffs larger than this are reported as
// "not small" (ok=false). The incremental-SPF repair is only a win when the
// mask changed by a handful of elements; past that a full sweep is both
// simpler and comparably fast, so the cache falls back to it.
const DefaultDiffLimit = 32

// DiffElements computes the bounded set difference between m and other:
// added lists elements blocked by m but not by other, removed lists elements
// blocked by other but not by m. Both slices are sorted deterministically
// (nodes by ID, then edges by endpoint pair). When the total diff exceeds
// DefaultDiffLimit the function gives up early and returns ok=false with nil
// slices — the fast path that lets the SPF cache probe "is this mask a small
// delta of one I already solved?" without unbounded work. A nil mask is
// treated as empty.
func (m *Mask) DiffElements(other *Mask) (added, removed []MaskElem, ok bool) {
	return m.AppendDiff(nil, nil, other, DefaultDiffLimit)
}

// AppendDiff is the allocation-aware core of DiffElements: it appends the
// diff to the provided slices (reusing their capacity) under an explicit
// element limit, returning the grown slices and whether the diff stayed
// within the limit. On ok=false the returned slices are the inputs truncated
// to their original contents' prefix and must not be interpreted as a diff.
func (m *Mask) AppendDiff(added, removed []MaskElem, other *Mask, limit int) ([]MaskElem, []MaskElem, bool) {
	a0, r0 := len(added), len(removed)
	mc, oc := 0, 0
	if m != nil {
		mc = m.count
	}
	if other != nil {
		oc = other.count
	}
	// Quick reject: the diff has at least |count difference| elements.
	if d := mc - oc; d > limit || -d > limit {
		return added[:a0], removed[:r0], false
	}
	budget := limit
	if m != nil {
		for n := range m.nodes {
			if !other.NodeBlocked(n) {
				if budget--; budget < 0 {
					return added[:a0], removed[:r0], false
				}
				added = append(added, MaskElem{Node: n})
			}
		}
		for e := range m.edges {
			if other == nil || !other.edges[e] {
				if budget--; budget < 0 {
					return added[:a0], removed[:r0], false
				}
				added = append(added, MaskElem{Edge: e, IsEdge: true})
			}
		}
	}
	if other != nil {
		for n := range other.nodes {
			if !m.NodeBlocked(n) {
				if budget--; budget < 0 {
					return added[:a0], removed[:r0], false
				}
				removed = append(removed, MaskElem{Node: n})
			}
		}
		for e := range other.edges {
			if m == nil || !m.edges[e] {
				if budget--; budget < 0 {
					return added[:a0], removed[:r0], false
				}
				removed = append(removed, MaskElem{Edge: e, IsEdge: true})
			}
		}
	}
	// Map iteration order is randomized; sort so the diff (and everything
	// derived from it, like delta-repair settle counters) is deterministic.
	slices.SortFunc(added[a0:], maskElemCompare)
	slices.SortFunc(removed[r0:], maskElemCompare)
	return added, removed, true
}

// mix64 is the splitmix64 finalizer: a cheap, high-quality 64-bit bit mixer
// used for mask fingerprints and cache sharding.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Fingerprint returns a deterministic 64-bit digest of the blocked set.
// Blocked elements are combined commutatively (XOR of per-element mixes,
// maintained incrementally as elements are blocked), so the fingerprint is
// independent of insertion order and costs O(1) to query. A nil or empty
// mask fingerprints to 0. Masks with equal fingerprints are treated as equal
// by the SPF cache; the per-element mixing keeps accidental collisions
// vanishingly unlikely at cache scale.
func (m *Mask) Fingerprint() uint64 {
	if m == nil || m.count == 0 {
		return 0
	}
	// Fold the element count in so masks whose XORs cancel still differ.
	return mix64(m.fp ^ uint64(m.count)<<1 ^ 0x9E3779B97F4A7C15)
}

// Union returns a new mask blocking everything blocked by m or other.
func (m *Mask) Union(other *Mask) *Mask {
	c := m.Clone()
	if other == nil {
		return c
	}
	for n, v := range other.nodes {
		if v && !c.nodes[n] {
			c.nodes[n] = true
			c.fp ^= nodeMix(n)
			c.count++
		}
	}
	for e, v := range other.edges {
		if v && !c.edges[e] {
			c.edges[e] = true
			c.fp ^= edgeMix(e)
			c.count++
		}
	}
	return c
}
