package prof

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// TestStartStopNoFlags checks the zero-config path: nothing set, nothing
// written, no error.
func TestStartStopNoFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestProfilesWritten drives every profile flag through a Start/Stop cycle
// and checks each destination received a non-empty pprof file.
func TestProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	paths := map[string]string{
		"cpuprofile":   filepath.Join(dir, "cpu.pb.gz"),
		"memprofile":   filepath.Join(dir, "mem.pb.gz"),
		"mutexprofile": filepath.Join(dir, "mutex.pb.gz"),
		"blockprofile": filepath.Join(dir, "block.pb.gz"),
	}
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := Register(fs)
	args := make([]string, 0, len(paths))
	for name, p := range paths {
		args = append(args, "-"+name+"="+p)
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	// Retain an allocation across the forced GC so the heap profile has at
	// least one live sample attributable to this test.
	keep := make([]byte, 1<<20)
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	_ = keep[0]
	for name, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s: wrote an empty profile", name)
		}
	}
}
