// Package prof wires Go's runtime profilers behind a uniform set of CLI
// flags (-cpuprofile, -memprofile, -mutexprofile, -blockprofile) so every
// binary in this repository exposes the same profiling workflow. The
// profiles answer different questions:
//
//   - cpu: where the cycles go (Dijkstra sweeps vs heap ops vs GC);
//   - mem: what retains heap at exit (megascale graphs, per-domain
//     subgraphs, SPF caches) — the check on the deterministic byte
//     accounting the megascale study reports;
//   - mutex: who waits on contended locks — the proof surface for the
//     lock-free SPF cache read path, which must not appear here at all;
//   - block: time parked on channel operations (actor mailboxes, worker
//     handoff), the tool that separates "slow because computing" from "slow
//     because waiting".
//
// Mutex and block profiling have a measurable cost when enabled, so each
// profiler activates only when its flag names an output file. See README.md
// "Profiling" for the analysis workflow.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags carries the profiler destinations registered on a FlagSet.
type Flags struct {
	cpu   *string
	mem   *string
	mutex *string
	block *string

	cpuOut *os.File
}

// Register adds -cpuprofile, -memprofile, -mutexprofile and -blockprofile
// to fs.
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		cpu:   fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem:   fs.String("memprofile", "", "write an end-of-run heap profile to this file (after a forced GC, so it shows live retention)"),
		mutex: fs.String("mutexprofile", "", "write a mutex-contention profile to this file (rate 1: every contention event)"),
		block: fs.String("blockprofile", "", "write a blocking profile to this file (rate 1: every blocking event)"),
	}
}

// Start activates every profiler whose flag was set. Callers must pair it
// with Stop (normally via defer) so the profiles are actually written.
func (f *Flags) Start() error {
	if *f.cpu != "" {
		out, err := os.Create(*f.cpu)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(out); err != nil {
			out.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		f.cpuOut = out
	}
	if *f.mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if *f.block != "" {
		runtime.SetBlockProfileRate(1)
	}
	return nil
}

// Stop flushes and closes every active profile. Safe when nothing was
// started; returns the first write error so the caller can surface it.
func (f *Flags) Stop() error {
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if f.cpuOut != nil {
		pprof.StopCPUProfile()
		keep(f.cpuOut.Close())
		f.cpuOut = nil
	}
	if *f.mem != "" {
		// Collect garbage first so the profile reflects live retention
		// (graphs, trees, caches), not transient sweep scratch already
		// returned to pools.
		runtime.GC()
		keep(writeProfile("heap", "mem", *f.mem))
	}
	if *f.mutex != "" {
		keep(writeProfile("mutex", "mutex", *f.mutex))
		runtime.SetMutexProfileFraction(0)
	}
	if *f.block != "" {
		keep(writeProfile("block", "block", *f.block))
		runtime.SetBlockProfileRate(0)
	}
	return first
}

// writeProfile dumps the runtime profile named name to path in pprof binary
// form; flagName labels errors with the CLI flag that requested it.
func writeProfile(name, flagName, path string) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("%sprofile: profile not registered", flagName)
	}
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("%sprofile: %w", flagName, err)
	}
	if err := p.WriteTo(out, 0); err != nil {
		out.Close()
		return fmt.Errorf("%sprofile: %w", flagName, err)
	}
	return out.Close()
}
