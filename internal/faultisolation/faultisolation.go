// Package faultisolation infers where a failure occurred inside a multicast
// tree from reachability observations alone — which receivers still get
// data and which went silent. This is the role of Reddy, Govindan & Estrin's
// "Fault Isolation in Multicast Trees" (the paper's reference [1]) inside
// SMRP's hierarchical recovery architecture: before a recovery domain can
// handle a failure, someone must identify which domain the failure is in.
//
// The isolation rule is purely structural: a tree edge (p → c) is a suspect
// if and only if everything reachable through c went dark while p still has
// a live path — equivalently, c's subtree contains no reachable member and
// the failure frontier passes between p and c. With a single link/node
// failure the true failed component always lies in the suspect set, and the
// set is minimal for the information available (observations cannot
// distinguish a link (p→c) failure from a failure of node c itself when c
// has no member descendants that survive).
package faultisolation

import (
	"errors"
	"fmt"
	"slices"

	"smrp/internal/graph"
	"smrp/internal/multicast"
)

// Observation is the input to isolation: which members are currently
// receiving data.
type Observation struct {
	// Reachable holds the members still receiving the stream.
	Reachable map[graph.NodeID]bool
}

// NewObservation builds an observation from the reachable-member list.
func NewObservation(reachable []graph.NodeID) Observation {
	m := make(map[graph.NodeID]bool, len(reachable))
	for _, n := range reachable {
		m[n] = true
	}
	return Observation{Reachable: m}
}

// Suspect is one candidate failure location.
type Suspect struct {
	// Edge is the tree link whose downstream side went dark.
	Edge graph.EdgeID
	// Down is the downstream endpoint (the subtree root that lost service);
	// a failure of node Down itself is observationally equivalent.
	Down graph.NodeID
	// DarkMembers counts the members isolated below this edge.
	DarkMembers int
}

// Errors returned by Isolate.
var (
	// ErrNoFailure is returned when every member is reachable.
	ErrNoFailure = errors.New("faultisolation: all members reachable")
	// ErrInconsistent is returned when the observation cannot result from
	// any set of tree-edge failures (e.g. an off-tree node reported
	// reachable).
	ErrInconsistent = errors.New("faultisolation: observation inconsistent with tree")
)

// Isolate returns the minimal suspect set explaining the observation: the
// highest tree edges whose entire downstream member set went dark while the
// upstream side still reaches at least the source. Suspects are ordered by
// descending DarkMembers, then ascending edge.
//
// For a single-failure event the true failed link (or its downstream node)
// is always in the returned set; multiple simultaneous failures yield one
// suspect per maximal dark subtree.
func Isolate(t *multicast.Tree, obs Observation) ([]Suspect, error) {
	// Validate the observation.
	for n := range obs.Reachable {
		if !t.IsMember(n) {
			return nil, fmt.Errorf("%w: %d reported reachable but is not a member", ErrInconsistent, n)
		}
	}
	dark := 0
	for _, m := range t.Members() {
		if !obs.Reachable[m] {
			dark++
		}
	}
	if dark == 0 {
		return nil, ErrNoFailure
	}

	// liveMembers[n] = number of reachable members in the subtree rooted
	// at n; total[n] = total members in the subtree.
	live := make(map[graph.NodeID]int, t.NumNodes())
	total := make(map[graph.NodeID]int, t.NumNodes())
	type frame struct {
		node    graph.NodeID
		visited bool
	}
	stack := []frame{{node: t.Source()}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.visited {
			l, tt := 0, 0
			if t.IsMember(f.node) {
				tt = 1
				if obs.Reachable[f.node] {
					l = 1
				}
			}
			for _, k := range t.Children(f.node) {
				l += live[k]
				tt += total[k]
			}
			live[f.node] = l
			total[f.node] = tt
			continue
		}
		stack = append(stack, frame{node: f.node, visited: true})
		for _, k := range t.Children(f.node) {
			stack = append(stack, frame{node: k})
		}
	}

	// A suspect is the highest edge (p→c) such that c's subtree has members
	// but none reachable, and p is NOT itself inside a fully-dark subtree
	// (those are explained by the higher suspect).
	var suspects []Suspect
	var walk func(n graph.NodeID)
	walk = func(n graph.NodeID) {
		for _, c := range t.Children(n) {
			if total[c] > 0 && live[c] == 0 {
				suspects = append(suspects, Suspect{
					Edge:        graph.MakeEdgeID(n, c),
					Down:        c,
					DarkMembers: total[c],
				})
				continue // everything below is explained
			}
			walk(c)
		}
	}
	walk(t.Source())

	if len(suspects) == 0 {
		// Dark members exist but every dark member sits in a subtree with
		// some live member — impossible for pure downstream-cut failures.
		return nil, fmt.Errorf("%w: dark members without a dark subtree", ErrInconsistent)
	}
	slices.SortFunc(suspects, func(a, b Suspect) int {
		if a.DarkMembers != b.DarkMembers {
			return b.DarkMembers - a.DarkMembers
		}
		if a.Edge.A != b.Edge.A {
			return int(a.Edge.A - b.Edge.A)
		}
		return int(a.Edge.B - b.Edge.B)
	})
	return suspects, nil
}

// ObserveFailure produces the observation a monitoring system would see
// after the given failure mask: members still connected to the source over
// surviving tree edges.
func ObserveFailure(t *multicast.Tree, mask *graph.Mask) Observation {
	reach := make(map[graph.NodeID]bool)
	if mask.NodeBlocked(t.Source()) {
		return Observation{Reachable: reach}
	}
	stack := []graph.NodeID{t.Source()}
	seen := map[graph.NodeID]bool{t.Source(): true}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.IsMember(n) {
			reach[n] = true
		}
		for _, k := range t.Children(n) {
			if seen[k] || mask.NodeBlocked(k) || mask.EdgeBlocked(n, k) {
				continue
			}
			seen[k] = true
			stack = append(stack, k)
		}
	}
	return Observation{Reachable: reach}
}
