package faultisolation

import (
	"errors"
	"testing"

	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/multicast"
	"smrp/internal/topology"
)

// fig1Tree builds the Figure-1 SPF tree: members C(3), D(4) via A(1).
func fig1Tree(t *testing.T) *multicast.Tree {
	t.Helper()
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := multicast.New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Graft(graph.Path{0, 1, 3}, true); err != nil {
		t.Fatal(err)
	}
	if err := tr.Graft(graph.Path{1, 4}, true); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestIsolateSingleLeafCut(t *testing.T) {
	tr := fig1Tree(t)
	// L_AD fails: only D (4) dark.
	obs := ObserveFailure(tr, failure.LinkDown(1, 4).Mask())
	suspects, err := Isolate(tr, obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(suspects) != 1 {
		t.Fatalf("suspects = %v", suspects)
	}
	if suspects[0].Edge != graph.MakeEdgeID(1, 4) || suspects[0].Down != 4 {
		t.Errorf("suspect = %+v, want edge (1-4) down 4", suspects[0])
	}
	if suspects[0].DarkMembers != 1 {
		t.Errorf("dark members = %d", suspects[0].DarkMembers)
	}
}

func TestIsolateSharedLinkCut(t *testing.T) {
	tr := fig1Tree(t)
	// L_SA fails: both members dark; the suspect is the highest dark edge.
	obs := ObserveFailure(tr, failure.LinkDown(0, 1).Mask())
	suspects, err := Isolate(tr, obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(suspects) != 1 {
		t.Fatalf("suspects = %v", suspects)
	}
	if suspects[0].Edge != graph.MakeEdgeID(0, 1) || suspects[0].DarkMembers != 2 {
		t.Errorf("suspect = %+v", suspects[0])
	}
}

func TestIsolateNodeFailureEquivalence(t *testing.T) {
	tr := fig1Tree(t)
	// Node A (1) fails: observationally identical to L_SA failing.
	obs := ObserveFailure(tr, failure.NodeDown(1).Mask())
	suspects, err := Isolate(tr, obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(suspects) != 1 || suspects[0].Down != 1 {
		t.Errorf("suspects = %v, want downstream node A", suspects)
	}
}

func TestIsolateNoFailure(t *testing.T) {
	tr := fig1Tree(t)
	obs := NewObservation([]graph.NodeID{3, 4})
	if _, err := Isolate(tr, obs); !errors.Is(err, ErrNoFailure) {
		t.Errorf("err = %v", err)
	}
}

func TestIsolateInconsistent(t *testing.T) {
	tr := fig1Tree(t)
	// A non-member reported reachable.
	obs := NewObservation([]graph.NodeID{2})
	if _, err := Isolate(tr, obs); !errors.Is(err, ErrInconsistent) {
		t.Errorf("err = %v", err)
	}
}

func TestIsolateMultipleFailures(t *testing.T) {
	// Star tree: S with three member branches; two branches cut.
	g := graph.New(4)
	for i := 1; i < 4; i++ {
		if err := g.AddEdge(0, graph.NodeID(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := multicast.New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if err := tr.Graft(graph.Path{0, graph.NodeID(i)}, true); err != nil {
			t.Fatal(err)
		}
	}
	mask := failure.LinkDown(0, 1).Mask().Union(failure.LinkDown(0, 3).Mask())
	obs := ObserveFailure(tr, mask)
	suspects, err := Isolate(tr, obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(suspects) != 2 {
		t.Fatalf("suspects = %v, want two", suspects)
	}
	got := map[graph.EdgeID]bool{}
	for _, s := range suspects {
		got[s.Edge] = true
	}
	if !got[graph.MakeEdgeID(0, 1)] || !got[graph.MakeEdgeID(0, 3)] {
		t.Errorf("suspects = %v", suspects)
	}
}

// TestIsolationAlwaysContainsTrueFailure property-checks on random trees:
// for every member's worst-case link failure, the true failed edge is in
// the suspect set.
func TestIsolationAlwaysContainsTrueFailure(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		rng := topology.NewRNG(seed + 31)
		g, err := topology.Waxman(topology.WaxmanConfig{
			N: 60, Alpha: 0.25, Beta: topology.DefaultBeta, EnsureConnected: true,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := multicast.New(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		spt := g.Dijkstra(0, nil)
		for _, m := range rng.Sample(59, 12) {
			n := graph.NodeID(m + 1)
			if tr.OnTree(n) {
				if err := tr.Graft(graph.Path{n}, true); err != nil {
					t.Fatal(err)
				}
				continue
			}
			p := spt.PathTo(n)
			start := 0
			for i, x := range p {
				if tr.OnTree(x) {
					start = i
				} else {
					break
				}
			}
			if err := tr.Graft(p[start:], true); err != nil {
				t.Fatal(err)
			}
		}
		for _, m := range tr.Members() {
			f, err := failure.WorstCaseFor(tr, m)
			if err != nil {
				t.Fatal(err)
			}
			obs := ObserveFailure(tr, f.Mask())
			suspects, err := Isolate(tr, obs)
			if err != nil {
				t.Fatalf("seed %d member %d: %v", seed, m, err)
			}
			found := false
			for _, s := range suspects {
				if s.Edge == f.Edge {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("seed %d member %d: true failure %v not among suspects %v",
					seed, m, f.Edge, suspects)
			}
			// Single failure must yield a single maximal dark subtree.
			if len(suspects) != 1 {
				t.Errorf("seed %d member %d: %d suspects for one failure", seed, m, len(suspects))
			}
		}
	}
}
