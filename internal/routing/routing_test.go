package routing

import (
	"math"
	"testing"

	"smrp/internal/eventsim"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/topology"
)

func fig1Domain(t *testing.T) *Domain {
	t.Helper()
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDomain(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{DetectionDelay: -1, SPFCompute: 0, FloodFactor: 1},
		{DetectionDelay: 0, SPFCompute: -1, FloodFactor: 1},
		{DetectionDelay: 0, SPFCompute: 0, FloodFactor: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
	g, err := topology.PaperFig1()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDomain(g, bad[0]); err == nil {
		t.Error("NewDomain should reject bad config")
	}
}

func TestRoutesBeforeFailure(t *testing.T) {
	d := fig1Domain(t)
	// D (4) routes to S (0) via A (1): weight 2 < D-B-S = 4.
	p := d.PathTo(4, 0)
	if p.String() != "4→1→0" {
		t.Errorf("route = %v", p)
	}
	if d.Dist(4, 0) != 2 {
		t.Errorf("dist = %v", d.Dist(4, 0))
	}
	if hop, ok := d.NextHop(4, 0); !ok || hop != 1 {
		t.Errorf("next hop = %v,%v", hop, ok)
	}
	if _, ok := d.NextHop(0, 0); ok {
		t.Error("next hop to self should not exist")
	}
}

func TestReconvergenceAfterFailure(t *testing.T) {
	d := fig1Domain(t)
	_ = d.PathTo(4, 0) // warm the cache
	d.ApplyFailure(failure.LinkDown(1, 4))
	// Post-reconvergence D routes via B.
	p := d.PathTo(4, 0)
	if p.String() != "4→2→0" {
		t.Errorf("route after failure = %v", p)
	}
	if d.Dist(4, 0) != 4 {
		t.Errorf("dist after failure = %v", d.Dist(4, 0))
	}
}

func TestPathToUnreachable(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	d, err := NewDomain(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p := d.PathTo(0, 2); p != nil {
		t.Errorf("route to isolated node = %v", p)
	}
}

func TestConvergenceTimeLink(t *testing.T) {
	d := fig1Domain(t)
	f := failure.LinkDown(1, 4) // A-D fails; detectors are A and D
	cfg := DefaultConfig()
	// A itself converges after detection + compute.
	got := d.ConvergenceTime(1, f)
	want := cfg.DetectionDelay + cfg.SPFCompute
	if got != want {
		t.Errorf("ConvergenceTime(A) = %v, want %v", got, want)
	}
	// S is 1 away from detector A (residual), so +1 flooding.
	if got := d.ConvergenceTime(0, f); got != want+1 {
		t.Errorf("ConvergenceTime(S) = %v, want %v", got, want+1)
	}
	// D detects directly.
	if got := d.ConvergenceTime(4, f); got != want {
		t.Errorf("ConvergenceTime(D) = %v, want %v", got, want)
	}
	if d.DetectionTime() != cfg.DetectionDelay {
		t.Errorf("DetectionTime = %v", d.DetectionTime())
	}
}

func TestConvergenceTimeNodeFailure(t *testing.T) {
	d := fig1Domain(t)
	f := failure.NodeDown(1) // A dies; detectors: S, C, D
	cfg := DefaultConfig()
	want := cfg.DetectionDelay + cfg.SPFCompute
	if got := d.ConvergenceTime(0, f); got != want {
		t.Errorf("ConvergenceTime(S) = %v, want %v (S detects directly)", got, want)
	}
	// B is 2 from detector S in the residual graph.
	if got := d.ConvergenceTime(2, f); got != want+2 {
		t.Errorf("ConvergenceTime(B) = %v, want %v", got, want+2)
	}
}

func TestConvergenceTimePartitioned(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	d, err := NewDomain(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := failure.NodeDown(1)
	// Node 2 is partitioned from detector 0; its LSA never arrives… but 2
	// is itself a detector (adjacent to 1), so it converges directly.
	if got := d.ConvergenceTime(2, f); math.IsInf(float64(got), 1) {
		t.Errorf("node 2 detects directly, got +Inf")
	}
	// A genuinely unreachable bystander: extend with an isolated node 3…
	g2 := graph.New(4)
	if err := g2.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddEdge(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	d2, err := NewDomain(g2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 fails; detector is 1. Node 3 hears via 1→2→3 (distance 2).
	cfg := DefaultConfig()
	if got := d2.ConvergenceTime(3, failure.NodeDown(0)); got != cfg.DetectionDelay+2+cfg.SPFCompute {
		t.Errorf("ConvergenceTime = %v", got)
	}
}

func TestConvergenceAccumulatesFailures(t *testing.T) {
	d := fig1Domain(t)
	d.ApplyFailure(failure.LinkDown(1, 4))
	d.ApplyFailure(failure.LinkDown(2, 4))
	// D is now fully cut from S.
	if p := d.PathTo(4, 0); p != nil {
		if !p.ContainsEdge(graph.MakeEdgeID(3, 4)) {
			t.Errorf("unexpected surviving route %v", p)
		}
	}
	// Route via C still exists: D-C-A-S.
	p := d.PathTo(4, 0)
	if p.String() != "4→3→1→0" {
		t.Errorf("route = %v", p)
	}
	// Convergence for a second failure accounts for the first one.
	got := d.ConvergenceTime(2, failure.LinkDown(2, 4))
	want := DefaultConfig().DetectionDelay + DefaultConfig().SPFCompute
	if got != want {
		t.Errorf("ConvergenceTime(B, own link) = %v, want %v", got, want)
	}
	_ = eventsim.Infinity
}

func TestStringer(t *testing.T) {
	d := fig1Domain(t)
	if d.String() == "" {
		t.Error("String should render")
	}
	if d.Graph() == nil || d.Mask() == nil {
		t.Error("accessors should be non-nil")
	}
}
