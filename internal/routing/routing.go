// Package routing simulates the unicast link-state routing substrate
// (OSPF-like) that multicast protocols sit on. It maintains per-node
// shortest-path tables over the current (possibly degraded) topology and
// models reconvergence timing after a failure: detection at the adjacent
// routers, LSA flooding outward, and a per-router SPF recomputation delay.
//
// The paper's observation (via Wang et al. [25]) is that PIM failure
// recovery is dominated by exactly this reconvergence time; SMRP's local
// detours bypass it. The protocol layer uses ConvergenceTime to decide when
// a member's global detour may begin, versus DetectionTime for local ones.
package routing

import (
	"errors"
	"fmt"
	"math"

	"smrp/internal/eventsim"
	"smrp/internal/failure"
	"smrp/internal/graph"
)

// Config sets the reconvergence-delay model.
type Config struct {
	// DetectionDelay is the time for a router adjacent to a failed
	// component to declare it down (hello/dead-interval in OSPF terms).
	DetectionDelay eventsim.Time
	// SPFCompute is the local route-recomputation time each router spends
	// once it learns of the failure.
	SPFCompute eventsim.Time
	// FloodFactor scales LSA propagation: an LSA reaches a router after
	// FloodFactor × (shortest residual distance from the detecting router).
	// 1 means LSAs travel at data-plane speed.
	FloodFactor float64
}

// DefaultConfig returns a reconvergence model reflecting the measurements
// the paper cites (Wang et al. [25]): failure recovery for PIM-over-OSPF is
// dominated by reconvergence — detection (hello/dead interval), LSA
// flooding, and above all the SPF delay/hold-down timers every router
// imposes before recomputing routes. Times are in edge-weight units; with
// unit-square Waxman topologies a typical end-to-end path is ≈0.5–1.5
// units, so SPFCompute dominates, as it does in deployed OSPF.
func DefaultConfig() Config {
	return Config{
		DetectionDelay: 2.0,
		SPFCompute:     5.0,
		FloodFactor:    1.0,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.DetectionDelay < 0 || c.SPFCompute < 0 {
		return errors.New("routing: delays must be non-negative")
	}
	if c.FloodFactor <= 0 {
		return errors.New("routing: FloodFactor must be positive")
	}
	return nil
}

// Domain is a link-state routing domain over one graph. Tables are computed
// lazily per node against the currently-applied failure set and memoized in a
// concurrency-safe SPF cache keyed by (node, failure-mask fingerprint), so
// applying a failure and then rolling back to a previously-seen mask reuses
// the earlier tables, and paired protocol instances over the same graph share
// one table store.
//
// Read queries (PathTo, Dist, NextHop, ConvergenceTime) are safe for
// concurrent use. ApplyFailure mutates the domain's topology view and must be
// externally synchronized with readers — the usual pattern (one event-driven
// simulation owning the domain, or parallel trials each owning a private
// domain) satisfies this naturally.
type Domain struct {
	g    *graph.Graph
	cfg  Config
	mask *graph.Mask
	// spf memoizes per-node shortest-path trees. When the graph has an
	// attached cache (Graph.EnableSPFCache) that one is shared; otherwise the
	// domain gets a private cache.
	spf *graph.SPFCache
	// lastFailure supports ConvergenceTime queries for the most recent
	// failure event.
	lastFailure *failure.Failure
}

// NewDomain builds a routing domain over g. If g has an attached SPF cache it
// is reused (sharing memoized trees with every other consumer of the graph);
// otherwise the domain creates a private cache.
func NewDomain(g *graph.Graph, cfg Config) (*Domain, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spf := g.SPFCacheOf()
	if spf == nil {
		spf = graph.NewSPFCache(g, 0)
	}
	return &Domain{
		g:    g,
		cfg:  cfg,
		mask: graph.NewMask(),
		spf:  spf,
	}, nil
}

// Graph returns the underlying topology.
func (d *Domain) Graph() *graph.Graph { return d.g }

// Mask returns the currently applied failure mask (shared; callers must not
// mutate it).
func (d *Domain) Mask() *graph.Mask { return d.mask }

// ApplyFailure folds a failure into the domain's view of the topology.
// Routing tables need no explicit invalidation: the SPF cache keys on the
// failure-mask fingerprint, so the next table query under the new mask is a
// distinct entry (and tables for the old mask remain valid if re-queried).
func (d *Domain) ApplyFailure(f failure.Failure) {
	d.mask = d.mask.Union(f.Mask())
	fCopy := f
	d.lastFailure = &fCopy
}

// RemoveFailure lifts a previously applied failure (a repair). Components
// blocked independently stay blocked. Tables under the restored mask come
// straight from the SPF cache when the mask was seen before.
func (d *Domain) RemoveFailure(f failure.Failure) {
	m := d.mask.Clone()
	f.RemoveFrom(m)
	d.mask = m
}

// table returns (computing if needed) the node's shortest-path tree over the
// current topology view. Trees come from the shared SPF cache and must be
// treated as read-only.
func (d *Domain) table(n graph.NodeID) *graph.SPTree {
	return d.spf.Dijkstra(n, d.mask)
}

// PathTo returns from's current unicast route to dst (from → … → dst), or
// nil if dst is unreachable in the converged state.
func (d *Domain) PathTo(from, to graph.NodeID) graph.Path {
	p := d.table(from).PathTo(to)
	if p == nil {
		return nil
	}
	return p
}

// Dist returns the converged unicast distance from → to.
func (d *Domain) Dist(from, to graph.NodeID) float64 {
	return d.table(from).Dist[to]
}

// NextHop returns from's converged next hop toward dst and whether a route
// exists.
func (d *Domain) NextHop(from, to graph.NodeID) (graph.NodeID, bool) {
	p := d.PathTo(from, to)
	if len(p) < 2 {
		return graph.Invalid, false
	}
	return p[1], true
}

// DetectionTime returns when routers adjacent to the failure declare it
// down, measured from the failure instant.
func (d *Domain) DetectionTime() eventsim.Time {
	return d.cfg.DetectionDelay
}

// detectors returns the healthy nodes adjacent to the failure, which
// originate the LSAs announcing it.
func detectors(g *graph.Graph, f failure.Failure) []graph.NodeID {
	switch f.Kind {
	case failure.LinkFailure:
		return []graph.NodeID{f.Edge.A, f.Edge.B}
	case failure.NodeFailure:
		var out []graph.NodeID
		for _, arc := range g.Neighbors(f.Node) {
			out = append(out, arc.To)
		}
		return out
	default:
		return nil
	}
}

// ConvergenceTime returns when router n's table reflects failure f, measured
// from the failure instant:
//
//	detection + FloodFactor · min residual distance(detector, n) + SPF compute
//
// Routers adjacent to the failure converge after detection + SPF compute. It
// returns +Inf when no LSA can reach n (n is partitioned from every
// detector).
func (d *Domain) ConvergenceTime(n graph.NodeID, f failure.Failure) eventsim.Time {
	mask := d.mask.Union(f.Mask())
	best := math.Inf(1)
	for _, det := range detectors(d.g, f) {
		if mask.NodeBlocked(det) {
			continue
		}
		if det == n {
			best = 0
			break
		}
		t := d.spf.Dijkstra(det, mask)
		if t.Reachable(n) && t.Dist[n] < best {
			best = t.Dist[n]
		}
	}
	if math.IsInf(best, 1) {
		return eventsim.Infinity
	}
	return d.cfg.DetectionDelay + eventsim.Time(d.cfg.FloodFactor*best) + d.cfg.SPFCompute
}

// String describes the domain state.
func (d *Domain) String() string {
	return fmt.Sprintf("routing.Domain{nodes=%d cached=%d}", d.g.NumNodes(), d.spf.Len())
}
