package smrp_test

import (
	"fmt"
	"log"

	"smrp"
)

// Example_quickstart builds an SMRP session on the paper's Figure 1
// topology, breaks the link the example discusses, and heals via the local
// detour.
func Example_quickstart() {
	net, err := smrp.PaperFig1()
	if err != nil {
		log.Fatal(err)
	}
	cfg := smrp.DefaultConfig()
	cfg.DThresh = 0 // SPF-shaped joins, as in Figure 1(a)
	sess, err := smrp.NewSession(net, 0, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// C and D join (nodes 3 and 4).
	for _, m := range []smrp.NodeID{3, 4} {
		if _, err := sess.Join(m); err != nil {
			log.Fatal(err)
		}
	}
	// The link A-D fails; D recovers by connecting to its neighbor C.
	rep, err := sess.Recover(smrp.LinkDown(1, 4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disconnected: %v\n", rep.Disconnected)
	fmt.Printf("detour: %v (RD %.0f)\n", rep.Detours[4], rep.RecoveryDistance[4])
	// Output:
	// disconnected: [4]
	// detour: 4→3 (RD 2)
}

// ExampleComputeSHR shows the paper's path-sharing metric on a small tree.
func ExampleComputeSHR() {
	net, err := smrp.PaperFig1()
	if err != nil {
		log.Fatal(err)
	}
	cfg := smrp.DefaultConfig()
	cfg.DThresh = 0
	sess, err := smrp.NewSession(net, 0, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range []smrp.NodeID{3, 4} {
		if _, err := sess.Join(m); err != nil {
			log.Fatal(err)
		}
	}
	shr := smrp.ComputeSHR(sess.Tree())
	// Both members' paths share the link S-A, so SHR(S,A) counts both.
	fmt.Printf("SHR(S,A) = %d\n", shr[1])
	fmt.Printf("SHR(S,D) = %d\n", shr[4])
	// Output:
	// SHR(S,A) = 2
	// SHR(S,D) = 3
}

// ExampleWorstCaseFor selects the paper's per-member worst-case failure.
func ExampleWorstCaseFor() {
	net, err := smrp.PaperFig1()
	if err != nil {
		log.Fatal(err)
	}
	cfg := smrp.DefaultConfig()
	cfg.DThresh = 0
	sess, err := smrp.NewSession(net, 0, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Join(4); err != nil {
		log.Fatal(err)
	}
	f, err := smrp.WorstCaseFor(sess.Tree(), 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f)
	// Output:
	// link(0-1) down
}
