// Command smrp-trace runs one failure/recovery scenario on the event-driven
// protocol implementations and prints the full timeline: joins, the failure,
// per-member detection and restoration, and a before/after data-delivery
// check — the per-scenario view behind the aggregate experiments.
//
// Usage:
//
//	smrp-trace -n 60 -members 10 -seed 7
//	smrp-trace -protocol spf -dthresh 0
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"smrp/internal/core"
	"smrp/internal/eventsim"
	"smrp/internal/failure"
	"smrp/internal/graph"
	"smrp/internal/protocol"
	"smrp/internal/topology"
	"smrp/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "smrp-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("smrp-trace", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 60, "network size")
		nMembers = fs.Int("members", 10, "group size")
		alpha    = fs.Float64("alpha", 0.4, "Waxman alpha")
		dthresh  = fs.Float64("dthresh", 0.3, "SMRP D_thresh")
		seed     = fs.Uint64("seed", 7, "RNG seed")
		proto    = fs.String("protocol", "smrp", "protocol to trace: smrp|spf")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := topology.NewRNG(*seed)
	g, err := topology.Waxman(topology.WaxmanConfig{
		N: *n, Alpha: *alpha, Beta: topology.DefaultBeta, EnsureConnected: true,
	}, rng)
	if err != nil {
		return err
	}
	fmt.Printf("topology: %v\n", topology.Describe(g))

	// Root at a well-connected node.
	source := graph.NodeID(0)
	for i := 1; i < g.NumNodes(); i++ {
		if g.Degree(graph.NodeID(i)) > g.Degree(source) {
			source = graph.NodeID(i)
		}
	}
	var members []graph.NodeID
	for _, id := range rng.Sample(*n, *nMembers+1) {
		if graph.NodeID(id) != source && len(members) < *nMembers {
			members = append(members, graph.NodeID(id))
		}
	}
	fmt.Printf("source: %d, members: %v\n\n", source, members)

	cfg := protocol.DefaultConfig()
	cfg.SMRP = core.DefaultConfig()
	cfg.SMRP.DThresh = *dthresh

	switch *proto {
	case "smrp":
		return traceSMRP(g, source, members, cfg)
	case "spf":
		return traceSPF(g, source, members, cfg)
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}
}

func traceSMRP(g *graph.Graph, source graph.NodeID, members []graph.NodeID, cfg protocol.Config) error {
	inst, err := protocol.NewSMRPInstance(g, source, cfg)
	if err != nil {
		return err
	}
	log := trace.New(0)
	inst.SetTrace(log)
	for k, m := range members {
		if err := inst.ScheduleJoin(eventsim.Time(k+1), m); err != nil {
			return err
		}
	}
	if err := inst.Run(100); err != nil {
		return err
	}
	fmt.Printf("t=100  tree built: %d nodes, %d members\n",
		inst.Session().Tree().NumNodes(), inst.Session().Tree().NumMembers())
	printDelivery("      pre-failure delivery", inst.Multicast())

	victim := members[0]
	f, err := failure.WorstCaseFor(inst.Session().Tree(), victim)
	if err != nil {
		return err
	}
	disconnected := failure.DisconnectedMembers(inst.Session().Tree(), f.Mask())
	fmt.Printf("t=150  inject worst-case failure for member %d: %v (disconnects %v)\n", victim, f, disconnected)
	if err := inst.InjectFailure(150, f); err != nil {
		return err
	}
	if err := inst.Run(1000); err != nil {
		return err
	}
	printRestorations(inst.Restorations(), len(disconnected))
	printDelivery("      post-recovery delivery", inst.Multicast())
	fmt.Printf("      control messages sent: %d\n", inst.Network().Sent)
	fmt.Printf("\nprotocol event log (%s):\n%s", log.Summary(), log.String())
	return inst.Session().Tree().Validate()
}

func traceSPF(g *graph.Graph, source graph.NodeID, members []graph.NodeID, cfg protocol.Config) error {
	inst, err := protocol.NewSPFInstance(g, source, cfg)
	if err != nil {
		return err
	}
	log := trace.New(0)
	inst.SetTrace(log)
	for k, m := range members {
		if err := inst.ScheduleJoin(eventsim.Time(k+1), m); err != nil {
			return err
		}
	}
	if err := inst.Run(100); err != nil {
		return err
	}
	fmt.Printf("t=100  tree built: %d nodes, %d members\n",
		inst.Session().Tree().NumNodes(), inst.Session().Tree().NumMembers())
	printDelivery("      pre-failure delivery", inst.Multicast())

	victim := members[0]
	f, err := failure.WorstCaseFor(inst.Session().Tree(), victim)
	if err != nil {
		return err
	}
	disconnected := failure.DisconnectedMembers(inst.Session().Tree(), f.Mask())
	fmt.Printf("t=150  inject worst-case failure for member %d: %v (disconnects %v)\n", victim, f, disconnected)
	if err := inst.InjectFailure(150, f); err != nil {
		return err
	}
	if err := inst.Run(1000); err != nil {
		return err
	}
	printRestorations(inst.Restorations(), len(disconnected))
	printDelivery("      post-recovery delivery", inst.Multicast())
	fmt.Printf("      control messages sent: %d\n", inst.Network().Sent)
	fmt.Printf("\nprotocol event log (%s):\n%s", log.Summary(), log.String())
	return inst.Session().Tree().Validate()
}

func printRestorations(rs []protocol.Restoration, disconnected int) {
	if len(rs) < disconnected {
		fmt.Printf("      %d of %d disconnected members were unrecoverable (failure was a cut edge)\n",
			disconnected-len(rs), disconnected)
	}
	if len(rs) == 0 {
		return
	}
	fmt.Println("      restorations:")
	for _, r := range rs {
		fmt.Printf("        member %-4d detected t=%-8.3f restored t=%-8.3f latency %-8.3f RD %.3f\n",
			r.Member, r.DetectedAt, r.RestoredAt, r.Latency, r.RecoveryDistance)
	}
}

func printDelivery(label string, d map[graph.NodeID]eventsim.Time) {
	type kv struct {
		m graph.NodeID
		t eventsim.Time
	}
	rows := make([]kv, 0, len(d))
	for m, t := range d {
		rows = append(rows, kv{m: m, t: t})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].m < rows[j].m })
	fmt.Printf("%s: %d members reached\n", label, len(rows))
	for _, r := range rows {
		fmt.Printf("        member %-4d +%.3f\n", r.m, r.t)
	}
}
