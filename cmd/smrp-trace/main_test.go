package main

import "testing"

func TestRunSMRPTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	if err := run([]string{"-n", "40", "-members", "4", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSPFTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	if err := run([]string{"-n", "40", "-members", "4", "-seed", "9", "-protocol", "spf"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-protocol", "bogus"}); err == nil {
		t.Error("unknown protocol should error")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("bad flag should error")
	}
}
