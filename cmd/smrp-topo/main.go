// Command smrp-topo generates and inspects evaluation topologies.
//
// Usage:
//
//	smrp-topo -n 100 -alpha 0.2 -seed 1            # describe a Waxman graph
//	smrp-topo -n 100 -alpha 0.2 -json topo.json    # also write it as JSON
//	smrp-topo -transit-stub                        # describe a transit–stub
//	smrp-topo -describe topo.json                  # re-describe a saved file
package main

import (
	"flag"
	"fmt"
	"os"

	"smrp/internal/graph"
	"smrp/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "smrp-topo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("smrp-topo", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 100, "number of nodes")
		alpha    = fs.Float64("alpha", 0.2, "Waxman alpha (edge density)")
		beta     = fs.Float64("beta", topology.DefaultBeta, "Waxman beta (long-edge bias)")
		seed     = fs.Uint64("seed", 1, "RNG seed")
		jsonOut  = fs.String("json", "", "write the generated topology to this file")
		describe = fs.String("describe", "", "describe a previously saved topology instead of generating")
		ts       = fs.Bool("transit-stub", false, "generate a transit–stub topology instead of flat Waxman")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *describe != "" {
		f, err := os.Open(*describe)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err := topology.ReadJSON(f)
		if err != nil {
			return err
		}
		fmt.Println(topology.Describe(g))
		return nil
	}

	if *ts {
		cfg := topology.DefaultTransitStubConfig()
		tsg, err := topology.GenerateTransitStub(cfg, topology.NewRNG(*seed))
		if err != nil {
			return err
		}
		fmt.Printf("transit–stub: %v\n", topology.Describe(tsg.Graph))
		fmt.Printf("  transit domain: %d nodes, gateway %d\n",
			len(tsg.Transit.Nodes), tsg.Transit.Gateway)
		for _, s := range tsg.Stubs {
			fmt.Printf("  stub %d: %d nodes, gateway %d attached to transit %d\n",
				s.ID, len(s.Nodes), s.Gateway, s.Attach)
		}
		return maybeWrite(*jsonOut, tsg.Graph)
	}

	g, err := topology.Waxman(topology.WaxmanConfig{
		N: *n, Alpha: *alpha, Beta: *beta, EnsureConnected: true,
	}, topology.NewRNG(*seed))
	if err != nil {
		return err
	}
	fmt.Println(topology.Describe(g))
	return maybeWrite(*jsonOut, g)
}

// maybeWrite saves the topology as JSON when a path was given.
func maybeWrite(path string, g *graph.Graph) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return topology.WriteJSON(f, g)
}
