package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunGenerateAndDescribe(t *testing.T) {
	out := filepath.Join(t.TempDir(), "topo.json")
	if err := run([]string{"-n", "30", "-alpha", "0.3", "-seed", "5", "-json", out}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("topology file missing: %v", err)
	}
	if err := run([]string{"-describe", out}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTransitStub(t *testing.T) {
	if err := run([]string{"-transit-stub", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-n", "1"}); err == nil {
		t.Error("tiny n should error")
	}
	if err := run([]string{"-describe", "/definitely/missing.json"}); err == nil {
		t.Error("missing file should error")
	}
	if err := run([]string{"-bogus-flag"}); err == nil {
		t.Error("bad flag should error")
	}
}
