// Command smrp-serve is the long-lived multicast-session control plane: it
// hosts many concurrent SMRP sessions over one shared topology and exposes
// join/leave/fail/repair, per-session stats, and Server-Sent-Events feeds
// over HTTP/JSON.
//
// Usage:
//
//	smrp-serve                              # 100-node Waxman on :8080
//	smrp-serve -addr :9000 -nodes 400       # bigger topology, other port
//	smrp-serve -seed 7 -alpha 0.25          # different random topology
//	smrp-serve -spf-delta=false             # full-recompute SPF baseline
//
// The topology is generated once at startup and shared read-only by every
// session; all sessions share one SPF cache, so concurrent sessions with
// overlapping failure history serve each other's shortest-path-tree misses
// via incremental delta repair. SIGINT/SIGTERM triggers a graceful drain:
// health turns 503, new sessions are refused, every session actor flushes
// its queued commands and publishes a final snapshot event, then the
// process exits.
//
// See README.md "Running the server" for the endpoint reference and curl
// examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"smrp/internal/core"
	"smrp/internal/graph"
	"smrp/internal/prof"
	"smrp/internal/server"
	"smrp/internal/topology"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "smrp-serve:", err)
		os.Exit(1)
	}
}

// run executes the daemon. ready (if non-nil) receives the bound listen
// address once the server is accepting — tests use it with "-addr 127.0.0.1:0"
// to learn the ephemeral port.
func run(ctx context.Context, args []string, ready func(addr string)) (err error) {
	fs := flag.NewFlagSet("smrp-serve", flag.ContinueOnError)
	profFlags := prof.Register(fs)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		nodes      = fs.Int("nodes", 100, "Waxman topology size")
		alpha      = fs.Float64("alpha", 0.2, "Waxman edge-density parameter")
		beta       = fs.Float64("beta", topology.DefaultBeta, "Waxman long-edge parameter")
		seed       = fs.Uint64("seed", 2005, "topology RNG seed")
		generation = fs.Uint64("generation", 1, "session-ID generation stamp (bump across restarts)")
		mailbox    = fs.Int("mailbox", 64, "per-session actor mailbox bound")
		dthresh    = fs.Float64("dthresh", 0.3, "default session delay threshold (D_thresh)")
		spfDelta   = fs.Bool("spf-delta", true, "enable incremental-SPF delta repair (process-global, set once here)")
		drainT     = fs.Duration("drain-timeout", 15*time.Second, "graceful-shutdown bound")
		mboxWait   = fs.Duration("mailbox-wait", 10*time.Second, "max request wait for mailbox space before 503")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Profiles cover the daemon's whole lifetime and flush on graceful
	// shutdown — profile a serving window by sending SIGINT when done.
	if perr := profFlags.Start(); perr != nil {
		return perr
	}
	defer func() {
		if perr := profFlags.Stop(); err == nil {
			err = perr
		}
	}()

	// SetSPFDelta toggles process-global state shared by every session; it
	// must be configured exactly once, before serving begins — never
	// per-request (see graph.SetSPFDelta).
	graph.SetSPFDelta(*spfDelta)

	g, err := topology.Waxman(topology.WaxmanConfig{
		N: *nodes, Alpha: *alpha, Beta: *beta, EnsureConnected: true,
	}, topology.NewRNG(*seed))
	if err != nil {
		return fmt.Errorf("topology: %w", err)
	}
	ts := topology.Describe(g)

	sessCfg := core.DefaultConfig()
	sessCfg.DThresh = *dthresh
	reg := server.NewRegistry(g, server.RegistryConfig{
		Generation:    *generation,
		MailboxCap:    *mailbox,
		DefaultConfig: sessCfg,
	})
	srv := server.New(reg, server.Config{
		MailboxWait:  *mboxWait,
		DrainTimeout: *drainT,
	})

	announce := func(bound string) {
		fmt.Printf("smrp-serve: listening on %s (topology: %s, seed=%d, spf-delta=%v)\n",
			bound, ts, *seed, *spfDelta)
		if ready != nil {
			ready(bound)
		}
	}
	err = srv.ListenAndServe(ctx, *addr, announce)
	if err == nil {
		fmt.Println("smrp-serve: drained cleanly")
	}
	return err
}
