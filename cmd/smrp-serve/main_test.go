package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// postJSON posts a JSON body and returns the status code.
func postJSON(client *http.Client, url string, body any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// TestServeSmoke boots the daemon on an ephemeral port, drives a workload of
// sessions, joins and a failure burst over HTTP, checks health, then cancels
// the run context (the SIGTERM path) and requires a clean drain with no
// leaked goroutines.
func TestServeSmoke(t *testing.T) {
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx,
			[]string{"-addr", "127.0.0.1:0", "-nodes", "80", "-seed", "9", "-generation", "3"},
			func(addr string) { addrCh <- addr })
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-runErr:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}

	tr := &http.Transport{}
	client := &http.Client{Transport: tr, Timeout: 15 * time.Second}

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d, want 200", resp.StatusCode)
	}

	// Workload: 10 sessions x 10 joins = 100 joins, then a failure burst
	// with recovery on each session.
	const sessions, joinsPer = 10, 10
	type sessionInfo struct {
		ID string `json:"id"`
	}
	ids := make([]string, sessions)
	for i := range ids {
		b, _ := json.Marshal(map[string]any{"source": i})
		resp, err := client.Post(base+"/v1/sessions", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		var info sessionInfo
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusCreated || info.ID == "" {
			t.Fatalf("create %d: status %d, info %+v, err %v", i, resp.StatusCode, info, err)
		}
		ids[i] = info.ID
	}
	joined := 0
	for i, id := range ids {
		for n := 1; n <= joinsPer; n++ {
			node := (i + n*7) % 80
			if node == i {
				continue
			}
			code, err := postJSON(client, fmt.Sprintf("%s/v1/sessions/%s/join", base, id),
				map[string]any{"node": node})
			if err != nil {
				t.Fatalf("join: %v", err)
			}
			switch code {
			case http.StatusOK:
				joined++
			case http.StatusConflict, http.StatusUnprocessableEntity:
				// duplicate node choice / out of delay bound — fine
			default:
				t.Fatalf("join session %s node %d: status %d", id, node, code)
			}
		}
	}
	if joined < sessions*joinsPer/2 {
		t.Fatalf("only %d joins succeeded", joined)
	}
	for i, id := range ids {
		victim := (i + 40) % 80
		if victim == i {
			continue
		}
		code, err := postJSON(client, fmt.Sprintf("%s/v1/sessions/%s/fail", base, id),
			map[string]any{"nodes": []int{victim}})
		if err != nil {
			t.Fatalf("fail: %v", err)
		}
		if code != http.StatusOK && code != http.StatusConflict {
			t.Fatalf("fail session %s node %d: status %d", id, victim, code)
		}
	}

	// Metrics reflect the workload.
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte("smrp_sessions 10")) {
		t.Fatalf("metrics missing session gauge:\n%s", body)
	}

	// SIGTERM path: cancel the run context and require a clean drain.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v, want clean drain", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not drain after context cancellation")
	}

	tr.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after drain: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
