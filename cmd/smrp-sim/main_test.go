package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "nope"}); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag should error")
	}
}

// TestRunWorkersValidation rejects non-positive worker counts before any
// experiment starts.
func TestRunWorkersValidation(t *testing.T) {
	for _, w := range []string{"0", "-3"} {
		err := run([]string{"-fig", "7", "-workers", w})
		if err == nil {
			t.Errorf("-workers %s should error", w)
			continue
		}
		if !strings.Contains(err.Error(), "-workers") {
			t.Errorf("-workers %s: error %q should mention the flag", w, err)
		}
	}
}

// TestRunWorkersFlag executes a small experiment under an explicit worker
// count.
func TestRunWorkersFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	if err := run([]string{"-fig", "nlevel", "-runs", "2", "-seed", "4", "-workers", "3"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunFig7Small executes the smallest real experiment end to end,
// including CSV output.
func TestRunFig7Small(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	csv := filepath.Join(t.TempDir(), "out.csv")
	if err := run([]string{"-fig", "7", "-seed", "3", "-csv", csv}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "global_rd,local_rd") {
		t.Errorf("csv = %q", string(data)[:40])
	}
}

func TestRunHierarchySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	if err := run([]string{"-fig", "hierarchy", "-runs", "2", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
}
