// Command smrp-sim regenerates the paper's evaluation figures and the
// repository's extension studies.
//
// Usage:
//
//	smrp-sim -fig 7                    # Figure 7 scatter + summary
//	smrp-sim -fig 8 -topos 10 -sets 10 # Figure 8 at paper scale
//	smrp-sim -fig 9 -workers 4         # Figure 9 on 4 worker goroutines
//	smrp-sim -fig all                  # everything, EXPERIMENTS.md style
//
// Figures: 7, 8, 9, 10, degree10, latency, hierarchy, ablations, all.
// The multi-failure chaos harness runs via -fig chaos, the three-way
// recovery-strategy testbed via -fig strategies, the sharded
// session-throughput study via -fig throughput, the flat-vs-hierarchical
// scaling study via -fig megascale (-hieronly skips the flat arm, admitting
// the N=10⁶ tier), and the thousands-of-groups shared-topology study via
// -fig multigroup (none are part of "all").
//
// Scenarios within a figure execute on a deterministic parallel runner
// (-workers, default GOMAXPROCS). Output is bit-identical for every worker
// count: each trial derives its RNG stream from (seed, trial index) alone and
// results fold in trial order.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"

	"smrp/internal/experiment"
	"smrp/internal/graph"
	"smrp/internal/prof"
)

// parseSizes parses the -sizes flag: a comma-separated list of node counts.
func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("-sizes: %q is not a node count", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-sizes: no sizes given")
	}
	return out, nil
}

func main() {
	// Ctrl-C cancels the context; in-flight trials stop dispatching and the
	// run exits with ctx.Err() instead of being killed mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := runCtx(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "smrp-sim:", err)
		os.Exit(1)
	}
}

// run executes the CLI without external cancellation (kept for tests).
func run(args []string) error {
	return runCtx(context.Background(), args)
}

func runCtx(ctx context.Context, args []string) (err error) {
	fs := flag.NewFlagSet("smrp-sim", flag.ContinueOnError)
	profFlags := prof.Register(fs)
	var (
		fig      = fs.String("fig", "all", "which experiment to run: 7|8|9|10|degree10|latency|hierarchy|ablations|churn|protection|nlevel|chaos|strategies|throughput|megascale|multigroup|all (chaos, strategies, throughput, megascale and multigroup run only when named)")
		topos    = fs.Int("topos", 10, "random topologies per sweep point")
		sets     = fs.Int("sets", 10, "member sets per topology")
		runs     = fs.Int("runs", 10, "runs for the latency/hierarchy studies")
		trials   = fs.Int("trials", 200, "seeded failure schedules for the chaos study")
		sessions = fs.Int("sessions", 10, "concurrent sessions for the throughput study")
		sizes    = fs.String("sizes", "10000,50000,100000", "comma-separated network sizes for the megascale study")
		groups   = fs.Int("groups", 32, "receivers per arm in the megascale study")
		hieronly = fs.Bool("hieronly", false, "megascale study: skip the flat control arm (admits sizes up to 1000000)")
		mgroups  = fs.Int("mgroups", experiment.DefaultMultigroupGroups, "concurrent groups for the multigroup study")
		mgsize   = fs.Int("mgsize", experiment.DefaultMultigroupMax, "largest (rank-0) group size on the multigroup Zipf profile")
		mgnodes  = fs.Int("mgnodes", experiment.DefaultMultigroupNodes, "shared-topology size for the multigroup study")
		seed     = fs.Uint64("seed", 2005, "base RNG seed")
		csv      = fs.String("csv", "", "also write machine-readable results to this file (figs 7-10, degree10, ablations)")
		workers  = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel trial workers (output is identical for any value)")
		spfstats = fs.Bool("spfstats", false, "print per-study SPF cache/delta-repair counters after each study")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be >= 1 (got %d)", *workers)
	}
	experiment.SetParallelism(*workers)

	// Profilers cover the full study run; Stop flushes them even when the
	// study itself fails, and a profile-write failure surfaces unless the
	// study already produced an error.
	if perr := profFlags.Start(); perr != nil {
		return perr
	}
	defer func() {
		if perr := profFlags.Stop(); err == nil {
			err = perr
		}
	}()

	var csvOut *os.File
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			return err
		}
		defer f.Close()
		csvOut = f
	}

	want := func(name string) bool {
		return *fig == "all" || strings.EqualFold(*fig, name)
	}
	ran := false

	// With -spfstats each study is followed by the delta of the process-wide
	// SPF counters it consumed: full sweeps vs incremental delta repairs,
	// nodes settled, and cache hit/miss traffic. Off by default so the
	// blessed study outputs stay byte-stable.
	spfPrev := graph.SPFCounters()
	printSPF := func(study string) {
		if !*spfstats {
			return
		}
		now := graph.SPFCounters()
		d := now.Sub(spfPrev)
		spfPrev = now
		fmt.Printf("spfstats %s: full=%d delta=%d settled=%d hits=%d misses=%d\n",
			study, d.FullRuns, d.DeltaRuns, d.NodesSettled, d.CacheHits, d.CacheMisses)
	}

	if want("7") {
		ran = true
		res, err := experiment.RunFig7Ctx(ctx, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		printSPF("7")
		if csvOut != nil {
			if err := res.WriteCSV(csvOut); err != nil {
				return err
			}
		}
	}
	type sweep struct {
		name string
		run  func(context.Context, int, int, uint64) (*experiment.SweepResult, error)
	}
	for _, s := range []sweep{
		{name: "8", run: experiment.RunFig8Ctx},
		{name: "9", run: experiment.RunFig9Ctx},
		{name: "10", run: experiment.RunFig10Ctx},
		{name: "degree10", run: experiment.RunDegree10Ctx},
	} {
		if !want(s.name) {
			continue
		}
		ran = true
		res, err := s.run(ctx, *topos, *sets, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		printSPF(s.name)
		if csvOut != nil {
			if err := res.WriteCSV(csvOut); err != nil {
				return err
			}
		}
	}
	if want("latency") {
		ran = true
		res, err := experiment.RunLatencyCtx(ctx, *runs, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		printSPF("latency")
	}
	if want("hierarchy") {
		ran = true
		res, err := experiment.RunHierarchyCtx(ctx, *runs, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		printSPF("hierarchy")
	}
	if want("ablations") {
		ran = true
		res, err := experiment.RunAblationsCtx(ctx, *topos/2, *sets/2, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		printSPF("ablations")
		if csvOut != nil {
			if err := res.WriteCSV(csvOut); err != nil {
				return err
			}
		}
	}
	if want("churn") {
		ran = true
		res, err := experiment.RunChurnCtx(ctx, *runs, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		printSPF("churn")
	}
	if want("nlevel") {
		ran = true
		res, err := experiment.RunNLevelCtx(ctx, *runs, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		printSPF("nlevel")
	}
	if want("protection") {
		ran = true
		res, err := experiment.RunProtectionCtx(ctx, *runs, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		printSPF("protection")
	}
	// The sharded throughput study runs only when explicitly requested: like
	// chaos it is an engineering harness, not one of the paper's figures, and
	// keeping it out of "all" keeps the blessed -fig all output stable.
	if strings.EqualFold(*fig, "throughput") {
		ran = true
		res, err := experiment.RunThroughputCtx(ctx, *sessions, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		printSPF("throughput")
		if len(res.Violations) > 0 {
			return fmt.Errorf("throughput: %d integrity violations", len(res.Violations))
		}
	}
	// The megascale study runs only when explicitly requested: it builds
	// topologies orders of magnitude beyond the paper's figures, and keeping
	// it out of "all" keeps the blessed -fig all output stable.
	if strings.EqualFold(*fig, "megascale") {
		ran = true
		ns, err := parseSizes(*sizes)
		if err != nil {
			return err
		}
		run := experiment.RunMegascaleCtx
		if *hieronly {
			run = experiment.RunMegascaleHierCtx
		}
		res, err := run(ctx, ns, *groups, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		printSPF("megascale")
	}
	// The multigroup study runs only when explicitly requested: thousands of
	// sparse-storage sessions with Zipf-profiled memberships on one shared
	// megascale topology and one shared SPF cache. Like megascale it stays
	// out of "all" to keep the blessed -fig all output stable.
	if strings.EqualFold(*fig, "multigroup") {
		ran = true
		res, err := experiment.RunMultigroupCtx(ctx, *mgroups, *mgsize, *mgnodes, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		printSPF("multigroup")
		if len(res.Violations) > 0 {
			return fmt.Errorf("multigroup: %d integrity violations", len(res.Violations))
		}
	}
	// The chaos study runs only when explicitly requested: it is a
	// correctness harness, not one of the paper's figures, and keeping it
	// out of "all" keeps the blessed -fig all output stable.
	if strings.EqualFold(*fig, "chaos") {
		ran = true
		res, err := experiment.RunChaosCtx(ctx, *trials, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		printSPF("chaos")
		if len(res.Violations) > 0 {
			return fmt.Errorf("chaos: %d invariant violations", len(res.Violations))
		}
	}
	// The comparative restoration testbed runs only when explicitly
	// requested: it plays the chaos workload three-way (SMRP vs MRC backup
	// configurations vs precomputed detours) and, like chaos, stays out of
	// "all" to keep the blessed -fig all output stable.
	if strings.EqualFold(*fig, "strategies") {
		ran = true
		res, err := experiment.RunStrategiesCtx(ctx, *trials, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		printSPF("strategies")
		if len(res.Violations) > 0 {
			return fmt.Errorf("strategies: %d invariant violations", len(res.Violations))
		}
	}
	if !ran {
		return fmt.Errorf("unknown figure %q", *fig)
	}
	return nil
}
